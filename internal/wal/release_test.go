package wal

// Tests for the release path's commit-record recycling (active only when no
// OnRelease observer is configured) and the uniform updatePepoch guard: the
// release scan runs even when the persistent epoch is unchanged, and the
// durable pepoch marker is rewritten only when it advances.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
)

// TestReleaseRecyclesWithoutObserver runs the full pipeline with no
// OnRelease hook — the configuration that recycles released commit records
// into the pool — under concurrent clients, and checks every future
// resolves durable with its own execution outcome intact.
func TestReleaseRecyclesWithoutObserver(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = 200 * time.Microsecond
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	ls.Start()

	const workers, per = 3, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		w := m.NewWorker()
		ls.AttachWorker(w)
		wg.Add(1)
		go func(w *txn.Worker, g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f := txn.NewFuture(time.Now())
				ts, err := w.ExecuteFuture(f, b.Deposit,
					proc.Args{proc.A(tuple.I(int64(1 + (g+i)%20))), proc.A(tuple.I(1)), proc.A(tuple.I(1))}, false)
				if err != nil {
					t.Error(err)
					return
				}
				if i%10 == 9 {
					m.AdvanceEpoch()
				}
				// Wait for durability, heartbeating between polls: a worker
				// parked on its own future must not hold back the safe
				// epoch (the SiloR liveness contract the frontend owns in
				// production use).
				var got uint64
				var werr error
				for resolved := false; !resolved; {
					select {
					case <-f.Done():
						got, werr = f.Wait()
						resolved = true
					case <-time.After(100 * time.Microsecond):
						w.Heartbeat()
					}
				}
				if werr != nil {
					t.Errorf("worker %d txn %d: %v", g, i, werr)
					return
				}
				if got != ts {
					t.Errorf("worker %d txn %d: future ts %d != exec ts %d", g, i, got, ts)
					return
				}
			}
			w.Retire()
		}(w, g)
	}
	// Keep epochs moving so waits terminate.
	stopTick := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopTick:
				return
			case <-time.After(200 * time.Microsecond):
				m.AdvanceEpoch()
			}
		}
	}()
	wg.Wait()
	close(stopTick)
	ls.Close()
}

// TestCloseReleasesAlreadyCoveredEpochs pins the updatePepoch fix: records
// flushed into epochs the persistent epoch already covers must be released
// (futures resolve durable) even though pepoch never advances — the old
// early-return left them pending until failOutstanding marked them
// ErrClosed. With no advance the durable pepoch marker must not be
// rewritten either.
func TestCloseReleasesAlreadyCoveredEpochs(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = time.Hour // no background flushes: Close does the only one
	// The devices are durable through epoch 5 from a "previous
	// incarnation"; the epoch clock still runs from 1, so every commit
	// below lands in an epoch pepoch already covers.
	cfg.ResumeEpoch = 5
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()

	var futs []*txn.Future
	for i := 0; i < 3; i++ {
		f := txn.NewFuture(time.Now())
		if _, err := w.ExecuteFuture(f, b.Deposit,
			proc.Args{proc.A(tuple.I(int64(1 + i))), proc.A(tuple.I(1)), proc.A(tuple.I(1))}, false); err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	w.Retire()
	ls.Close()

	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("future %d resolved %v, want durable (already-covered epoch left pending)", i, err)
		}
	}
	if got := ls.PersistedEpoch(); got != 5 {
		t.Fatalf("pepoch = %d, want unchanged 5", got)
	}
	if _, err := dev.Open(PepochFileName); err == nil {
		t.Fatal("pepoch marker rewritten although the persistent epoch never advanced")
	}
}

// TestWaitForEpochSignaled covers the condition-variable WaitForEpoch:
// waiters park and wake as updatePepoch advances the persistent epoch.
func TestWaitForEpochSignaled(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = 100 * time.Microsecond
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()

	done := make(chan struct{})
	go func() {
		defer close(done)
		ls.WaitForEpoch(3)
	}()
	for e := 0; e < 4; e++ {
		if _, err := w.Execute(b.Deposit,
			proc.Args{proc.A(tuple.I(int64(1 + e))), proc.A(tuple.I(1)), proc.A(tuple.I(1))}, false, time.Now()); err != nil {
			t.Fatal(err)
		}
		m.AdvanceEpoch()
		w.Heartbeat()
	}
	w.Retire()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForEpoch(3) never woke although pepoch advanced past 3")
	}
	if ls.PersistedEpoch() < 3 {
		t.Fatalf("pepoch = %d after wait returned", ls.PersistedEpoch())
	}
	ls.Close()
}

// TestFlushSyncFailureFailsRecords: a flush whose sync fails (the device
// power-failed mid-group-commit) must fail its drained records' futures
// with ErrCrashed instead of parking them in the pending set — a record
// flushed into an epoch the pepoch already covers would otherwise be
// released as durable on the next scan even though its bytes were never
// synced and die with the crash.
func TestFlushSyncFailureFailsRecords(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	ls := NewLogSet(m, Config{Kind: Command, Sync: true, FlushInterval: time.Hour}, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)

	fut := txn.NewFuture(time.Now())
	if _, err := w.ExecuteFuture(fut, b.Deposit,
		proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(5)), proc.A(tuple.I(1))}, false); err != nil {
		t.Fatal(err)
	}
	w.Retire()
	m.AdvanceEpoch()

	// Power-fail the device mid-flush: the batch write lands (write 2,
	// after the file header), its sync fails.
	plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{"d": {CrashAfterWrites: 2}}}
	plan.Arm(dev)
	lg := ls.loggers[0]
	lg.flush(m.SafeEpoch())
	plan.Disarm()

	select {
	case <-fut.Done():
	default:
		t.Fatal("future unresolved after failed-sync flush")
	}
	if _, err := fut.Wait(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("future resolved %v, want ErrCrashed", err)
	}
	n := 0
	for _, sh := range ls.relShards {
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	if n != 0 {
		t.Fatalf("%d unsynced records parked in pending (would be released as durable)", n)
	}
	if !lg.dead {
		t.Fatal("logger not latched dead after failed sync")
	}
}
