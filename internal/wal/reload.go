package wal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
)

// BatchFiles identifies the files of one log batch across all loggers.
type BatchFiles struct {
	Batch uint32
	Files []BatchFile
}

// BatchFile is one logger's file for a batch.
type BatchFile struct {
	Device *simdisk.Device
	Name   string
}

// Discover enumerates the log batches present on the devices, ordered by
// batch number. Recovery replays batches in this order.
func Discover(devices []*simdisk.Device) ([]BatchFiles, error) {
	byBatch := make(map[uint32][]BatchFile)
	for _, d := range devices {
		for _, name := range d.List("log-") {
			batch, err := parseBatchName(name)
			if err != nil {
				return nil, err
			}
			byBatch[batch] = append(byBatch[batch], BatchFile{Device: d, Name: name})
		}
	}
	out := make([]BatchFiles, 0, len(byBatch))
	for b, files := range byBatch {
		sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
		out = append(out, BatchFiles{Batch: b, Files: files})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Batch < out[j].Batch })
	return out, nil
}

func parseBatchName(name string) (uint32, error) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("wal: malformed log file name %q", name)
	}
	b, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed batch number in %q", name)
	}
	return uint32(b), nil
}

// ReloadStats reports what reloading observed.
type ReloadStats struct {
	Entries   int
	TornFiles int
	Dropped   int // entries beyond the persistent epoch
	Bytes     int64
}

// ReloadBatch reads and decodes one batch's files with up to `threads`
// parallel readers, drops entries beyond pepoch, and returns the entries
// sorted by commit timestamp — the strict commitment order the replay
// schemes require.
func ReloadBatch(bf BatchFiles, pepoch uint32, threads int) ([]*Entry, ReloadStats, error) {
	if threads < 1 {
		threads = 1
	}
	type fileResult struct {
		entries []*Entry
		torn    bool
		dropped int
		bytes   int64
		err     error
	}
	results := make([]fileResult, len(bf.Files))
	var wg sync.WaitGroup
	sem := make(chan struct{}, threads)
	for i, f := range bf.Files {
		wg.Add(1)
		go func(i int, f BatchFile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := f.Device.Open(f.Name)
			if err != nil {
				results[i].err = err
				return
			}
			data, err := r.ReadAll()
			if err != nil {
				results[i].err = err
				return
			}
			results[i].bytes = int64(len(data))
			kind, _, _, rest, err := decodeFileHeader(data)
			if err != nil {
				results[i].err = fmt.Errorf("%s: %w", f.Name, err)
				return
			}
			for len(rest) > 0 {
				e, n, err := decodeRecord(rest, kind)
				if err != nil {
					results[i].err = fmt.Errorf("%s: %w", f.Name, err)
					return
				}
				if n == 0 {
					// Torn or corrupt tail: everything before it is valid.
					results[i].torn = true
					break
				}
				rest = rest[n:]
				if e.Epoch() > pepoch {
					results[i].dropped++
					continue
				}
				results[i].entries = append(results[i].entries, e)
			}
		}(i, f)
	}
	wg.Wait()

	var stats ReloadStats
	var all []*Entry
	for _, r := range results {
		if r.err != nil {
			return nil, stats, r.err
		}
		all = append(all, r.entries...)
		if r.torn {
			stats.TornFiles++
		}
		stats.Dropped += r.dropped
		stats.Bytes += r.bytes
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	stats.Entries = len(all)
	return all, stats, nil
}

// ReloadAll reloads every batch in order and concatenates the entries —
// convenience for tests and the serial CLR scheme; the parallel schemes
// stream batch-by-batch instead.
func ReloadAll(devices []*simdisk.Device, pepoch uint32, threads int) ([]*Entry, ReloadStats, error) {
	batches, err := Discover(devices)
	if err != nil {
		return nil, ReloadStats{}, err
	}
	var all []*Entry
	var total ReloadStats
	for _, bf := range batches {
		es, st, err := ReloadBatch(bf, pepoch, threads)
		if err != nil {
			return nil, total, err
		}
		all = append(all, es...)
		total.Entries += st.Entries
		total.TornFiles += st.TornFiles
		total.Dropped += st.Dropped
		total.Bytes += st.Bytes
	}
	return all, total, nil
}

// MaxEpoch returns the largest commit epoch among entries (0 if none).
func MaxEpoch(entries []*Entry) uint32 {
	var m uint32
	for _, e := range entries {
		if ep := engine.EpochOf(e.TS); ep > m {
			m = ep
		}
	}
	return m
}
