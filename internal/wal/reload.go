package wal

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
)

// BatchFiles identifies the files of one log batch across all loggers.
type BatchFiles struct {
	Batch uint32
	Files []BatchFile
}

// BatchFile is one logger's file for a batch.
type BatchFile struct {
	Device *simdisk.Device
	Name   string
}

// Discover enumerates the log batches present on the devices, ordered by
// batch number. Recovery replays batches in this order.
func Discover(devices []*simdisk.Device) ([]BatchFiles, error) {
	byBatch := make(map[uint32][]BatchFile)
	for _, d := range devices {
		for _, name := range d.List("log-") {
			batch, err := parseBatchName(name)
			if err != nil {
				return nil, err
			}
			byBatch[batch] = append(byBatch[batch], BatchFile{Device: d, Name: name})
		}
	}
	out := make([]BatchFiles, 0, len(byBatch))
	for b, files := range byBatch {
		sort.Slice(files, func(i, j int) bool { return files[i].Name < files[j].Name })
		out = append(out, BatchFiles{Batch: b, Files: files})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Batch < out[j].Batch })
	return out, nil
}

func parseBatchName(name string) (uint32, error) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("wal: malformed log file name %q", name)
	}
	b, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed batch number in %q", name)
	}
	return uint32(b), nil
}

// ReloadStats reports what reloading observed. ReadTime and DecodeTime are
// summed across the files' concurrent readers, so either reload path (the
// batch-at-a-time ReloadBatch or the streaming Reloader) reports the same
// "reload work" quantity and the two stay comparable.
type ReloadStats struct {
	Entries   int
	TornFiles int
	Dropped   int // entries beyond the persistent epoch
	// Filtered counts entries dropped because a checkpoint already covered
	// them (TS <= the caller's checkpoint TS).
	Filtered   int
	Bytes      int64
	ReadTime   time.Duration
	DecodeTime time.Duration
}

// ReloadBatch reads and decodes one batch's files with up to `threads`
// parallel readers, drops entries beyond pepoch and entries a checkpoint
// already covers (TS <= ckptTS; 0 disables the filter), and returns the
// entries sorted by commit timestamp — the strict commitment order the
// replay schemes require.
func ReloadBatch(bf BatchFiles, pepoch uint32, ckptTS engine.TS, threads int) ([]*Entry, ReloadStats, error) {
	if threads < 1 {
		threads = 1
	}
	type fileResult struct {
		entries    []*Entry
		torn       bool
		dropped    int
		filtered   int
		bytes      int64
		readTime   time.Duration
		decodeTime time.Duration
		err        error
	}
	results := make([]fileResult, len(bf.Files))
	var wg sync.WaitGroup
	sem := make(chan struct{}, threads)
	for i, f := range bf.Files {
		wg.Add(1)
		go func(i int, f BatchFile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			r, err := f.Device.Open(f.Name)
			if err != nil {
				results[i].err = err
				return
			}
			data, err := r.ReadAll()
			results[i].readTime = time.Since(t0)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].bytes = int64(len(data))
			t1 := time.Now()
			entries, torn, dropped, filtered, err := decodeFile(data, pepoch, ckptTS)
			results[i].decodeTime = time.Since(t1)
			if err != nil {
				results[i].err = fmt.Errorf("%s: %w", f.Name, err)
				return
			}
			results[i].entries = entries
			results[i].torn = torn
			results[i].dropped = dropped
			results[i].filtered = filtered
		}(i, f)
	}
	wg.Wait()

	var stats ReloadStats
	var all []*Entry
	for _, r := range results {
		if r.err != nil {
			return nil, stats, r.err
		}
		all = append(all, r.entries...)
		if r.torn {
			stats.TornFiles++
		}
		stats.Dropped += r.dropped
		stats.Filtered += r.filtered
		stats.Bytes += r.bytes
		stats.ReadTime += r.readTime
		stats.DecodeTime += r.decodeTime
	}
	sort.Slice(all, func(i, j int) bool { return all[i].TS < all[j].TS })
	stats.Entries = len(all)
	return all, stats, nil
}

// decodeFile decodes one batch file's records: entries beyond pepoch are
// dropped, and when ckptTS is non-zero so are entries a checkpoint already
// covers (TS <= ckptTS). Both the batch-at-a-time ReloadBatch and the
// streaming Reloader decode through here, so the two reload paths cannot
// diverge.
//
// A file whose header is truncated or corrupt is treated as fully torn, not
// as a fatal error: a power failure between batch-file creation and the
// first sync legitimately persists an empty or partial header, and such a
// file simply holds nothing replayable (RepairTail removes it).
func decodeFile(data []byte, pepoch uint32, ckptTS engine.TS) (entries []*Entry, torn bool, dropped, filtered int, err error) {
	kind, _, _, rest, err := decodeFileHeader(data)
	if err != nil {
		return nil, true, 0, 0, nil
	}
	for len(rest) > 0 {
		e, n, err := decodeRecord(rest, kind)
		if err != nil {
			return nil, false, dropped, filtered, err
		}
		if n == 0 {
			// Torn or corrupt tail: everything before it is valid.
			torn = true
			break
		}
		rest = rest[n:]
		if e.Epoch() > pepoch {
			dropped++
			continue
		}
		if ckptTS > 0 && e.TS <= ckptTS {
			filtered++
			continue
		}
		entries = append(entries, e)
	}
	return entries, torn, dropped, filtered, nil
}

// ReloadAll reloads every batch in order and concatenates the entries —
// convenience for tests and the serial CLR scheme; the parallel schemes
// stream batch-by-batch instead.
func ReloadAll(devices []*simdisk.Device, pepoch uint32, threads int) ([]*Entry, ReloadStats, error) {
	batches, err := Discover(devices)
	if err != nil {
		return nil, ReloadStats{}, err
	}
	var all []*Entry
	var total ReloadStats
	for _, bf := range batches {
		es, st, err := ReloadBatch(bf, pepoch, 0, threads)
		if err != nil {
			return nil, total, err
		}
		all = append(all, es...)
		total.Entries += st.Entries
		total.TornFiles += st.TornFiles
		total.Dropped += st.Dropped
		total.Bytes += st.Bytes
		total.ReadTime += st.ReadTime
		total.DecodeTime += st.DecodeTime
	}
	return all, total, nil
}

// MaxEpoch returns the largest commit epoch among entries (0 if none).
func MaxEpoch(entries []*Entry) uint32 {
	var m uint32
	for _, e := range entries {
		if ep := engine.EpochOf(e.TS); ep > m {
			m = ep
		}
	}
	return m
}
