package wal

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/engine"
	"pacman/internal/metrics"
	"pacman/internal/simdisk"
)

// Batch is one reloaded log batch, delivered in batch (epoch) order. Entries
// are sorted by commit timestamp; Err, when set, ends the stream.
type Batch struct {
	Batch   uint32
	Entries []*Entry
	Err     error
}

// ReloadOptions configures a streaming Reloader.
type ReloadOptions struct {
	// Pepoch is the durability cut: entries beyond it are dropped.
	Pepoch uint32
	// CkptTS, when non-zero, drops entries already covered by a checkpoint
	// (TS <= CkptTS). The filter runs inside the decode workers, so covered
	// entries never reach the replay feed.
	CkptTS engine.TS
	// DecodeWorkers sizes the shared decode pool (default: one per device,
	// minimum 1). Decoding is out-of-order: a worker picks up whichever
	// file's bytes arrive next, regardless of batch.
	DecodeWorkers int
	// Window bounds staging memory: device readers may run at most Window
	// batches ahead of the last batch the consumer has taken (default 4).
	Window int
}

// PipelineStats describes what the reload pipeline did. The embedded
// ReloadStats' ReadTime and DecodeTime are summed across workers (the
// classic "reload time" of the paper's Figure 14a is their sum); Wall is
// the pipeline's wall clock from start to last delivery, which under
// overlap is far smaller than the sum.
type PipelineStats struct {
	ReloadStats
	// Wall is the reload pipeline's wall-clock duration.
	Wall time.Duration
}

// Reloader streams log batches from a set of devices through a three-stage
// pipeline: per-device reader goroutines (sequential I/O per device,
// concurrent across devices), a shared decode pool (out-of-order decode),
// and an ordering stage that merges each batch's per-file entry runs and
// delivers batches strictly in batch order. A bounded window keeps staging
// memory finite while letting reload of batches N+1..N+k overlap replay of
// batch N.
type Reloader struct {
	opts    ReloadOptions
	batches []BatchFiles
	out     chan Batch
	done    chan struct{}
	abortO  sync.Once
	aborted atomic.Bool

	mu        sync.Mutex
	cond      *sync.Cond
	delivered int // batches handed to the consumer
	pending   []*pendingBatch

	start      time.Time
	readTime   metrics.DurationSum
	decodeTime metrics.DurationSum
	wallNS     atomic.Int64
	bytes      atomic.Int64
	torn       atomic.Int64
	dropped    atomic.Int64
	filtered   atomic.Int64
	entries    atomic.Int64
}

// pendingBatch stages one batch's per-file entry runs until every file of
// the batch has been decoded.
type pendingBatch struct {
	remaining int
	runs      [][]*Entry
	err       error
}

// fileRef is one file a device reader must process, tagged with the index
// of its batch in delivery order.
type fileRef struct {
	idx  int
	file BatchFile
}

// decodeJob carries one file's raw bytes from a reader to the decode pool.
type decodeJob struct {
	idx  int
	name string
	data []byte
}

// NewReloader discovers the batches on the devices and starts the pipeline.
// The returned Reloader's Batches channel delivers every batch in order and
// is closed when the stream ends (normally or with an Err batch). Callers
// that stop consuming early must call Abort to release the pipeline.
func NewReloader(devices []*simdisk.Device, opts ReloadOptions) (*Reloader, error) {
	batches, err := Discover(devices)
	if err != nil {
		return nil, err
	}
	if opts.Window < 1 {
		opts.Window = 4
	}
	if opts.DecodeWorkers < 1 {
		opts.DecodeWorkers = len(devices)
		if opts.DecodeWorkers < 1 {
			opts.DecodeWorkers = 1
		}
	}
	r := &Reloader{
		opts:    opts,
		batches: batches,
		out:     make(chan Batch),
		done:    make(chan struct{}),
		pending: make([]*pendingBatch, len(batches)),
		start:   time.Now(),
	}
	r.cond = sync.NewCond(&r.mu)

	// Per-device work lists, in delivery order so each device reads its
	// files sequentially (the simdisk queue model rewards it).
	perDevice := make(map[*simdisk.Device][]fileRef)
	for i, bf := range batches {
		r.pending[i] = &pendingBatch{remaining: len(bf.Files)}
		for _, f := range bf.Files {
			perDevice[f.Device] = append(perDevice[f.Device], fileRef{idx: i, file: f})
		}
	}

	jobs := make(chan decodeJob, opts.DecodeWorkers)
	var readers sync.WaitGroup
	for _, refs := range perDevice {
		readers.Add(1)
		go func(refs []fileRef) {
			defer readers.Done()
			r.readDevice(refs, jobs)
		}(refs)
	}
	go func() {
		readers.Wait()
		close(jobs)
	}()
	for w := 0; w < opts.DecodeWorkers; w++ {
		go r.decodeLoop(jobs)
	}
	go r.deliver()
	return r, nil
}

// Batches returns the ordered delivery channel.
func (r *Reloader) Batches() <-chan Batch { return r.out }

// Abort tears the pipeline down; safe to call multiple times and after the
// stream has finished. Consumers that drain Batches to completion still
// should defer it for the early-error paths.
func (r *Reloader) Abort() {
	r.abortO.Do(func() {
		r.aborted.Store(true)
		close(r.done)
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
}

// Stats reports pipeline statistics; totals are final once the Batches
// channel has closed.
func (r *Reloader) Stats() PipelineStats {
	return PipelineStats{
		ReloadStats: ReloadStats{
			Entries:    int(r.entries.Load()),
			TornFiles:  int(r.torn.Load()),
			Dropped:    int(r.dropped.Load()),
			Filtered:   int(r.filtered.Load()),
			Bytes:      r.bytes.Load(),
			ReadTime:   r.readTime.Load(),
			DecodeTime: r.decodeTime.Load(),
		},
		Wall: time.Duration(r.wallNS.Load()),
	}
}

// readDevice streams one device's files through the window gate into the
// decode pool.
func (r *Reloader) readDevice(refs []fileRef, jobs chan<- decodeJob) {
	for _, fr := range refs {
		r.mu.Lock()
		for fr.idx >= r.delivered+r.opts.Window && !r.aborted.Load() {
			r.cond.Wait()
		}
		r.mu.Unlock()
		if r.aborted.Load() {
			return
		}
		t0 := time.Now()
		data, err := readFileBytes(fr.file)
		r.readTime.AddSince(t0)
		if err != nil {
			r.deposit(fr.idx, nil, err)
			continue
		}
		r.bytes.Add(int64(len(data)))
		select {
		case jobs <- decodeJob{idx: fr.idx, name: fr.file.Name, data: data}:
		case <-r.done:
			return
		}
	}
}

func readFileBytes(f BatchFile) ([]byte, error) {
	rd, err := f.Device.Open(f.Name)
	if err != nil {
		return nil, err
	}
	return rd.ReadAll()
}

// decodeLoop drains the shared job channel: decode, pepoch cut, checkpoint
// filter, and per-file TS sort all happen here, off the delivery path.
func (r *Reloader) decodeLoop(jobs <-chan decodeJob) {
	for job := range jobs {
		if r.aborted.Load() {
			continue // keep draining so readers never block on send
		}
		t0 := time.Now()
		entries, torn, dropped, filtered, err := decodeFile(job.data, r.opts.Pepoch, r.opts.CkptTS)
		if err != nil {
			err = fmt.Errorf("%s: %w", job.name, err)
		}
		// Each run arrives TS-sorted so delivery is a cheap k-way merge.
		sort.Slice(entries, func(i, j int) bool { return entries[i].TS < entries[j].TS })
		r.decodeTime.AddSince(t0)
		if torn {
			r.torn.Add(1)
		}
		r.dropped.Add(int64(dropped))
		r.filtered.Add(int64(filtered))
		r.deposit(job.idx, entries, err)
	}
}

// deposit records one decoded file (or its error) against its batch and
// wakes the deliverer when the batch completes.
func (r *Reloader) deposit(idx int, run []*Entry, err error) {
	r.mu.Lock()
	pb := r.pending[idx]
	if pb == nil {
		// Already delivered — only reachable through misuse, but a stray
		// late deposit must not panic a background goroutine.
		r.mu.Unlock()
		return
	}
	if err != nil && pb.err == nil {
		pb.err = err
	}
	if len(run) > 0 {
		pb.runs = append(pb.runs, run)
	}
	pb.remaining--
	if pb.remaining <= 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// deliver waits for each batch in order, merges its runs, and hands it to
// the consumer. Decode completes out of order; delivery never does. On any
// exit — normal completion, error batch, or consumer Abort — the pipeline
// is torn down, so a caller that merely drains Batches to close (without
// calling Abort) cannot leak reader goroutines parked on the window gate.
func (r *Reloader) deliver() {
	defer close(r.out)
	defer r.Abort()
	defer func() { r.wallNS.Store(int64(time.Since(r.start))) }()
	for i := range r.batches {
		r.mu.Lock()
		pb := r.pending[i]
		for pb.remaining > 0 && !r.aborted.Load() {
			r.cond.Wait()
		}
		if r.aborted.Load() {
			// Leave an incomplete batch staged: in-flight workers still
			// deposit into it after this abort-triggered exit.
			r.mu.Unlock()
			return
		}
		r.pending[i] = nil // fully deposited; release staging memory
		r.mu.Unlock()
		if pb.err != nil {
			select {
			case r.out <- Batch{Batch: r.batches[i].Batch, Err: pb.err}:
			case <-r.done:
			}
			return
		}
		merged := mergeRuns(pb.runs)
		r.entries.Add(int64(len(merged)))
		select {
		case r.out <- Batch{Batch: r.batches[i].Batch, Entries: merged}:
		case <-r.done:
			return
		}
		r.mu.Lock()
		r.delivered = i + 1
		r.cond.Broadcast() // open the window for the readers
		r.mu.Unlock()
	}
}

// mergeRuns k-way merges TS-sorted runs. The run count equals the batch's
// file count (one per logger), so a linear min scan beats heap overhead.
func mergeRuns(runs [][]*Entry) []*Entry {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]*Entry, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || r[heads[i]].TS < runs[best][heads[best]].TS {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}
