package wal

import (
	"testing"

	"pacman/internal/simdisk"
)

// drain collects the full stream of a Reloader, failing on a feed error.
func drain(t *testing.T, r *Reloader) []Batch {
	t.Helper()
	var out []Batch
	for b := range r.Batches() {
		if b.Err != nil {
			t.Fatalf("feed error: %v", b.Err)
		}
		out = append(out, b)
	}
	return out
}

func TestReloaderMatchesReloadAll(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 2, 60)
	pe := ls.PersistedEpoch()
	want, wantStats, err := ReloadAll(devs, pe, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReloader(devs, ReloadOptions{Pepoch: pe})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	var got []*Entry
	var lastBatch uint32
	for i, b := range drain(t, r) {
		if i > 0 && b.Batch <= lastBatch {
			t.Fatalf("batch %d delivered after %d", b.Batch, lastBatch)
		}
		lastBatch = b.Batch
		got = append(got, b.Entries...)
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].TS != want[i].TS {
			t.Fatalf("entry %d: TS %d, want %d", i, got[i].TS, want[i].TS)
		}
	}
	st := r.Stats()
	if st.Entries != wantStats.Entries || st.Bytes != wantStats.Bytes {
		t.Errorf("stats = %+v, want entries=%d bytes=%d", st, wantStats.Entries, wantStats.Bytes)
	}
	if st.ReadTime <= 0 || st.DecodeTime <= 0 || st.Wall <= 0 {
		t.Errorf("missing time accounting: %+v", st)
	}
}

func TestReloaderCheckpointBoundary(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 1, 30)
	pe := ls.PersistedEpoch()
	all, _, err := ReloadAll(devs, pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("fixture too small: %d entries", len(all))
	}
	// The checkpoint TS sits exactly on a committed entry: that entry is
	// covered by the checkpoint and must be filtered too (only TS > ckptTS
	// replays).
	ckptTS := all[len(all)/2].TS
	wantKept := 0
	for _, e := range all {
		if e.TS > ckptTS {
			wantKept++
		}
	}
	r, err := NewReloader(devs, ReloadOptions{Pepoch: pe, CkptTS: ckptTS})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	var got []*Entry
	for _, b := range drain(t, r) {
		got = append(got, b.Entries...)
	}
	if len(got) != wantKept {
		t.Fatalf("kept %d entries, want %d", len(got), wantKept)
	}
	for _, e := range got {
		if e.TS <= ckptTS {
			t.Fatalf("entry at TS %d leaked through the checkpoint filter (ckptTS %d)", e.TS, ckptTS)
		}
	}
	if f := r.Stats().Filtered; f != len(all)-wantKept {
		t.Errorf("Filtered = %d, want %d", f, len(all)-wantKept)
	}
}

func TestReloaderEmptyDevices(t *testing.T) {
	devs := []*simdisk.Device{
		simdisk.New("a", simdisk.Unlimited()),
		simdisk.New("b", simdisk.Unlimited()),
	}
	r, err := NewReloader(devs, ReloadOptions{Pepoch: ^uint32(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	if got := drain(t, r); len(got) != 0 {
		t.Fatalf("batches = %d, want 0", len(got))
	}
	if st := r.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats = %+v, want zeros", st)
	}
}

func TestReloaderTornTail(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 1, 20)
	pe := ls.PersistedEpoch()
	clean, _, err := ReloadAll(devs, pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the last batch file with garbage appended: the valid prefix
	// must survive, the tail must be counted, not errored.
	names := devs[0].List("log-")
	last := names[len(names)-1]
	rd, err := devs[0].Open(last)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	w := devs[0].Create(last)
	w.Write(data)
	w.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x02})
	w.Sync()

	r, err := NewReloader(devs, ReloadOptions{Pepoch: pe})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	var got []*Entry
	for _, b := range drain(t, r) {
		got = append(got, b.Entries...)
	}
	if len(got) != len(clean) {
		t.Fatalf("entries = %d, want %d (valid prefix)", len(got), len(clean))
	}
	if st := r.Stats(); st.TornFiles != 1 {
		t.Errorf("TornFiles = %d, want 1", st.TornFiles)
	}
}

func TestDiscoverOutOfOrderBatchNumbers(t *testing.T) {
	dev := simdisk.New("d", simdisk.Unlimited())
	// Created out of order, with a gap; Discover must sort by batch number.
	for _, batch := range []uint32{7, 2, 5} {
		w := dev.Create(BatchFileName(0, batch))
		w.Write(appendFileHeader(nil, Command, 0, batch))
		w.Sync()
	}
	batches, err := Discover([]*simdisk.Device{dev})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{2, 5, 7}
	if len(batches) != len(want) {
		t.Fatalf("batches = %d, want %d", len(batches), len(want))
	}
	for i, b := range batches {
		if b.Batch != want[i] {
			t.Fatalf("batch order %v, want %v", batches, want)
		}
	}
	// The reloader must deliver them in that order even though the files
	// are empty.
	r, err := NewReloader([]*simdisk.Device{dev}, ReloadOptions{Pepoch: ^uint32(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	for i, b := range drain(t, r) {
		if b.Batch != want[i] {
			t.Fatalf("delivery order wrong at %d: got %d want %d", i, b.Batch, want[i])
		}
	}
}

func TestDiscoverMalformedName(t *testing.T) {
	dev := simdisk.New("d", simdisk.Unlimited())
	dev.Create("log-junk").Sync()
	if _, err := Discover([]*simdisk.Device{dev}); err == nil {
		t.Fatal("malformed log file name not rejected")
	}
}

func TestReloaderTightWindow(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 2, 60)
	pe := ls.PersistedEpoch()
	want, _, err := ReloadAll(devs, pe, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: readers may only stage one batch ahead; the stream must
	// still be complete and ordered.
	r, err := NewReloader(devs, ReloadOptions{Pepoch: pe, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Abort()
	total := 0
	for _, b := range drain(t, r) {
		total += len(b.Entries)
	}
	if total != len(want) {
		t.Fatalf("entries = %d, want %d", total, len(want))
	}
}

func TestReloaderAbortEarly(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 2, 60)
	r, err := NewReloader(devs, ReloadOptions{Pepoch: ls.PersistedEpoch(), Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Take one batch, then walk away; Abort must release the pipeline
	// without deadlocking (the test binary's goroutine-leak-free exit is
	// the assertion).
	<-r.Batches()
	r.Abort()
	r.Abort() // idempotent
}
