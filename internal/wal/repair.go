package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
)

// RepairStats reports what a tail-repair pass found.
type RepairStats struct {
	// FilesRewritten counts batch files rewritten without their invalid
	// suffix or ghost records.
	FilesRewritten int
	// FilesRemoved counts batch files dropped whole because nothing in them
	// was replayable — the header itself was torn (a batch file created but
	// never synced before the crash).
	FilesRemoved int
	// StaleSidecars counts leftover repair sidecars from an earlier repair
	// pass that crashed before publishing; they are discarded (the original
	// file is still intact — publication is atomic).
	StaleSidecars int
	// GhostRecords counts records dropped because their epoch exceeded the
	// recovered persistent epoch: durably written by one logger while
	// another lagged, so never covered by pepoch and never replayed.
	GhostRecords int
	// TornBytes counts trailing bytes dropped as torn or corrupt frames.
	TornBytes int64
}

// Zero reports whether the pass found nothing to do — a second RepairTail
// at the same pepoch must always be Zero (repair converges).
func (s RepairStats) Zero() bool {
	return s == RepairStats{}
}

// repairSidecarPrefix names the sidecar a repair pass stages its rewrite
// in. The prefix is deliberately outside the "log-" namespace so Discover
// and repair scans never mistake a half-written sidecar for a batch file.
const repairSidecarPrefix = "repair~"

// repairPepochMarker truncates the pepoch marker to its longest valid
// prefix of 8-byte records. A crash that tore the marker mid-append (a
// partially persisted sector) leaves a misaligned fragment at the end;
// ReadPepoch correctly ignores it, but a restarted incarnation APPENDS
// after it — and every record behind a misaligned fragment is invisible to
// the aligned scan, silently freezing the durable pepoch while the new
// instance keeps acknowledging commits. The rewrite stages a sidecar and
// renames, like batch-file repair.
func repairPepochMarker(dev *simdisk.Device) (tornBytes int64, err error) {
	r, err := dev.Open(PepochFileName)
	if err != nil {
		if errors.Is(err, simdisk.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	data, err := r.ReadAll()
	if err != nil {
		return 0, err
	}
	valid, pe := scanPepochRecords(data)
	if valid == len(data) {
		return 0, nil
	}
	// Rewriting to the single last record both drops the torn fragment and
	// compacts a marker that grew over a long previous incarnation.
	if err := writePepochMarker(dev, pe); err != nil {
		return 0, err
	}
	return int64(len(data) - valid), nil
}

// RepairTail rewrites every log batch file so it contains exactly the
// records recovery replayed: frames whose epoch is at or below pepoch, with
// torn or corrupt trailing bytes removed. Files whose header never became
// durable (created but unsynced at the crash) hold nothing replayable and
// are removed whole.
//
// A restarted instance must run this before logging again. Records beyond
// pepoch are ghosts — recovery (correctly) filtered them against the crashed
// pepoch, but once the restarted instance advances the persistent epoch past
// their epochs, the next recovery's pepoch filter would wrongly admit them;
// and new batches must never be appended after a torn tail the decoder would
// stop at. Kept frames are copied byte-exact (no re-encode), so a repaired
// file replays identically.
//
// Repair is itself crash-safe and convergent: each rewrite is staged in a
// "repair~" sidecar, synced, and atomically renamed over the original, so a
// power failure at any point leaves either the untouched original (plus a
// stale sidecar the next pass discards) or the fully repaired file. Running
// RepairTail again after a completed pass finds nothing to do.
func RepairTail(devices []*simdisk.Device, pepoch uint32) (RepairStats, error) {
	var st RepairStats
	for _, dev := range devices {
		// Discard sidecars a crashed repair pass left behind; their
		// originals are intact, and a torn sidecar is unusable anyway.
		for _, name := range dev.List(repairSidecarPrefix) {
			if err := dev.Remove(name); err != nil {
				return st, err
			}
			st.StaleSidecars++
		}
		// The pepoch marker must be record-aligned before the restarted
		// instance appends to it; a torn fragment would hide every record
		// appended after it from ReadPepoch's aligned scan.
		tornPe, err := repairPepochMarker(dev)
		if err != nil {
			return st, err
		}
		if tornPe > 0 {
			st.FilesRewritten++
			st.TornBytes += tornPe
		}
		for _, name := range dev.List("log-") {
			r, err := dev.Open(name)
			if err != nil {
				return st, err
			}
			data, err := r.ReadAll()
			if err != nil {
				return st, err
			}
			kept, ghosts, tornBytes, headerTorn := scanValidFrames(data, pepoch)
			if headerTorn {
				if err := dev.Remove(name); err != nil {
					return st, err
				}
				st.FilesRemoved++
				st.TornBytes += int64(len(data))
				continue
			}
			if ghosts == 0 && tornBytes == 0 {
				continue
			}
			side := repairSidecarPrefix + name
			w := dev.Create(side)
			if _, err := w.Write(kept); err != nil {
				return st, err
			}
			if err := w.Sync(); err != nil {
				return st, err
			}
			if err := dev.Rename(side, name); err != nil {
				return st, err
			}
			st.FilesRewritten++
			st.GhostRecords += ghosts
			st.TornBytes += tornBytes
		}
	}
	return st, nil
}

// scanValidFrames walks the framed records of one batch file and returns the
// header plus the raw bytes of every frame with epoch <= pepoch, the number
// of ghost frames dropped, and how many trailing bytes were torn/corrupt.
// Frames are validated the same way decodeFile does (length + CRC), but the
// payload is never decoded — only its leading TS word is read. A file whose
// header is itself truncated or corrupt (created but never synced before the
// crash) reports headerTorn: it holds nothing replayable.
func scanValidFrames(data []byte, pepoch uint32) (kept []byte, ghosts int, tornBytes int64, headerTorn bool) {
	_, _, _, rest, err := decodeFileHeader(data)
	if err != nil {
		return nil, 0, 0, true
	}
	kept = append(kept, data[:fileHeaderSize]...)
	for len(rest) > 0 {
		if len(rest) < 8 {
			tornBytes = int64(len(rest))
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen <= 0 || len(rest) < 8+plen {
			tornBytes = int64(len(rest))
			break
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			tornBytes = int64(len(rest))
			break
		}
		if plen >= 8 && engine.EpochOf(binary.LittleEndian.Uint64(payload)) > pepoch {
			ghosts++
		} else {
			kept = append(kept, rest[:8+plen]...)
		}
		rest = rest[8+plen:]
	}
	return kept, ghosts, tornBytes, false
}
