package wal

import (
	"encoding/binary"
	"hash/crc32"

	"pacman/internal/engine"
	"pacman/internal/simdisk"
)

// RepairStats reports what a tail-repair pass found.
type RepairStats struct {
	// FilesRewritten counts batch files rewritten without their invalid
	// suffix or ghost records.
	FilesRewritten int
	// GhostRecords counts records dropped because their epoch exceeded the
	// recovered persistent epoch: durably written by one logger while
	// another lagged, so never covered by pepoch and never replayed.
	GhostRecords int
	// TornBytes counts trailing bytes dropped as torn or corrupt frames.
	TornBytes int64
}

// RepairTail rewrites every log batch file so it contains exactly the
// records recovery replayed: frames whose epoch is at or below pepoch, with
// torn or corrupt trailing bytes removed.
//
// A restarted instance must run this before logging again. Records beyond
// pepoch are ghosts — recovery (correctly) filtered them against the crashed
// pepoch, but once the restarted instance advances the persistent epoch past
// their epochs, the next recovery's pepoch filter would wrongly admit them;
// and new batches must never be appended after a torn tail the decoder would
// stop at. Kept frames are copied byte-exact (no re-encode), so a repaired
// file replays identically.
func RepairTail(devices []*simdisk.Device, pepoch uint32) (RepairStats, error) {
	var st RepairStats
	for _, dev := range devices {
		for _, name := range dev.List("log-") {
			r, err := dev.Open(name)
			if err != nil {
				return st, err
			}
			data, err := r.ReadAll()
			if err != nil {
				return st, err
			}
			kept, ghosts, tornBytes, err := scanValidFrames(data, pepoch)
			if err != nil {
				return st, err
			}
			if ghosts == 0 && tornBytes == 0 {
				continue
			}
			w := dev.Create(name)
			if _, err := w.Write(kept); err != nil {
				return st, err
			}
			if err := w.Sync(); err != nil {
				return st, err
			}
			st.FilesRewritten++
			st.GhostRecords += ghosts
			st.TornBytes += tornBytes
		}
	}
	return st, nil
}

// scanValidFrames walks the framed records of one batch file and returns the
// header plus the raw bytes of every frame with epoch <= pepoch, the number
// of ghost frames dropped, and how many trailing bytes were torn/corrupt.
// Frames are validated the same way decodeFile does (length + CRC), but the
// payload is never decoded — only its leading TS word is read.
func scanValidFrames(data []byte, pepoch uint32) (kept []byte, ghosts int, tornBytes int64, err error) {
	_, _, _, rest, err := decodeFileHeader(data)
	if err != nil {
		return nil, 0, 0, err
	}
	kept = append(kept, data[:fileHeaderSize]...)
	for len(rest) > 0 {
		if len(rest) < 8 {
			tornBytes = int64(len(rest))
			break
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen <= 0 || len(rest) < 8+plen {
			tornBytes = int64(len(rest))
			break
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			tornBytes = int64(len(rest))
			break
		}
		if plen >= 8 && engine.EpochOf(binary.LittleEndian.Uint64(payload)) > pepoch {
			ghosts++
		} else {
			kept = append(kept, rest[:8+plen]...)
		}
		rest = rest[8+plen:]
	}
	return kept, ghosts, tornBytes, nil
}
