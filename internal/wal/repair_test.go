package wal

import (
	"errors"
	"testing"

	"pacman/internal/simdisk"
	"pacman/internal/txn"
)

// commitRecords produces n committed bank records at the given epochs
// (non-decreasing), for hand-crafting batch files.
func commitRecords(t *testing.T, epochs ...uint32) []*txn.Committed {
	t.Helper()
	b, m := bankSetup(t)
	w := m.NewWorker()
	cur := uint32(1)
	for i, e := range epochs {
		for cur < e {
			m.AdvanceEpoch()
			cur++
		}
		mustExec(t, w, b, int64(1+i%10))
	}
	recs := w.Drain(^uint32(0))
	if len(recs) != len(epochs) {
		t.Fatalf("drained %d records, want %d", len(recs), len(epochs))
	}
	for i, c := range recs {
		if c.Epoch != epochs[i] {
			t.Fatalf("record %d at epoch %d, want %d", i, c.Epoch, epochs[i])
		}
	}
	return recs
}

// frames encodes the records as one batch file image (header + frames).
func frames(recs []*txn.Committed, loggerID int, batch uint32) []byte {
	buf := appendFileHeader(nil, Command, loggerID, batch)
	for _, c := range recs {
		buf = encodeRecord(buf, Command, c)
	}
	return buf
}

func writeFile(t *testing.T, dev *simdisk.Device, name string, data []byte) {
	t.Helper()
	w := dev.Create(name)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairTailAdversarialShapes exercises the file shapes the fault plane
// produces at a power failure, table-driven: torn partial-sector tails
// (mid-frame cuts, corrupted CRCs), files whose header never became
// durable, and ghost frames beyond the durable cut. Every case must repair
// to a file that reloads cleanly, and a second pass must find nothing.
func TestRepairTailAdversarialShapes(t *testing.T) {
	recs := commitRecords(t, 1, 2, 5)
	full := frames(recs, 0, 0)
	valid2 := frames(recs[:2], 0, 0) // epochs 1,2 only

	cases := []struct {
		name string
		data []byte
		// pepoch is the durable cut repair runs at.
		pepoch uint32
		// wantEntries after repair when reloading with a wide-open pepoch:
		// ghosts and torn bytes must be physically gone.
		wantEntries int
		wantRemoved bool
	}{
		{"clean file untouched", append([]byte(nil), valid2...), 2, 2, false},
		{"torn mid-frame cut", append(append([]byte(nil), full...), full[fileHeaderSize:fileHeaderSize+11]...), 5, 3, false},
		{"torn partial-sector garbage", append(append([]byte(nil), valid2...), 0xDE, 0xAD, 0xBE), 2, 2, false},
		{"corrupt crc tail", func() []byte {
			d := append([]byte(nil), full...)
			d[len(d)-1] ^= 0xFF // last frame's payload no longer matches its CRC
			return d
		}(), 5, 2, false},
		{"ghost frames beyond pepoch", append([]byte(nil), full...), 2, 2, false},
		{"empty file (created, never synced)", nil, 5, 0, true},
		{"torn header", full[:fileHeaderSize-3], 5, 0, true},
		{"garbage header", []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, 5, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := simdisk.New("d", simdisk.Unlimited())
			name := BatchFileName(0, 0)
			writeFile(t, dev, name, tc.data)

			// The shape must already reload without a hard error (recovery
			// runs before repair), then repair must normalize it.
			if _, _, err := ReloadAll([]*simdisk.Device{dev}, tc.pepoch, 1); err != nil {
				t.Fatalf("pre-repair reload: %v", err)
			}
			st, err := RepairTail([]*simdisk.Device{dev}, tc.pepoch)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantRemoved {
				if st.FilesRemoved != 1 {
					t.Fatalf("stats = %+v, want the headerless file removed", st)
				}
				if names := dev.List("log-"); len(names) != 0 {
					t.Fatalf("headerless file still present: %v", names)
				}
			} else {
				entries, rs, err := ReloadAll([]*simdisk.Device{dev}, ^uint32(0), 1)
				if err != nil {
					t.Fatal(err)
				}
				if rs.TornFiles != 0 {
					t.Error("repaired file still torn")
				}
				if len(entries) != tc.wantEntries {
					t.Fatalf("repaired file holds %d entries, want %d", len(entries), tc.wantEntries)
				}
				for _, e := range entries {
					if e.Epoch() > tc.pepoch {
						t.Errorf("ghost entry at epoch %d survived repair at pepoch %d", e.Epoch(), tc.pepoch)
					}
				}
			}
			// Convergence: the second pass finds nothing to do.
			st2, err := RepairTail([]*simdisk.Device{dev}, tc.pepoch)
			if err != nil {
				t.Fatal(err)
			}
			if !st2.Zero() {
				t.Fatalf("second repair pass not a no-op: %+v", st2)
			}
		})
	}
}

// TestRepairTailSkewedWatermarks: two devices crashed at different durable
// watermarks — the lagging device defines pepoch, and the leading device's
// durably synced frames beyond it are ghosts that repair must drop on that
// device while leaving the lagging device untouched.
func TestRepairTailSkewedWatermarks(t *testing.T) {
	recs := commitRecords(t, 1, 2, 5)
	lag := simdisk.New("lag", simdisk.Unlimited())
	lead := simdisk.New("lead", simdisk.Unlimited())
	writeFile(t, lag, BatchFileName(0, 0), frames(recs[:2], 0, 0)) // synced through epoch 2
	writeFile(t, lead, BatchFileName(1, 0), frames(recs, 1, 0))    // synced through epoch 5

	const pepoch = 2 // min(loggers): the lagging device's watermark
	devs := []*simdisk.Device{lag, lead}
	st, err := RepairTail(devs, pepoch)
	if err != nil {
		t.Fatal(err)
	}
	if st.FilesRewritten != 1 || st.GhostRecords != 1 {
		t.Fatalf("stats = %+v, want exactly the leading device's ghost dropped", st)
	}
	entries, _, err := ReloadAll(devs, ^uint32(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // epochs 1,2 on each device
		t.Fatalf("post-repair entries = %d, want 4", len(entries))
	}
	if st2, _ := RepairTail(devs, pepoch); !st2.Zero() {
		t.Fatalf("second pass not a no-op: %+v", st2)
	}
}

// TestRepairTailCrashDuringRepair: a power failure in the middle of a
// repair pass (tripped by the sidecar write) must leave the original batch
// file untouched — publication is atomic — and a rerun of the repair after
// the crash must converge to the same result as an uninterrupted repair.
func TestRepairTailCrashDuringRepair(t *testing.T) {
	recs := commitRecords(t, 1, 2, 5)
	dirty := append(append([]byte(nil), frames(recs, 0, 0)...), 0xBA, 0xD0)

	for _, tornTail := range []int64{0, 1} {
		dev := simdisk.New("d", simdisk.Unlimited())
		writeFile(t, dev, BatchFileName(0, 0), dirty)

		plan := &simdisk.FaultPlan{Devs: map[string]*simdisk.DeviceFaults{
			"d": {CrashAfterWrites: 1, TornTailBytes: tornTail},
		}}
		plan.Arm(dev)
		_, err := RepairTail([]*simdisk.Device{dev}, 2)
		if err == nil {
			t.Fatal("repair on a power-failing device should fail")
		}
		if !errors.Is(err, simdisk.ErrPowerFailed) {
			t.Fatalf("err = %v, want ErrPowerFailed", err)
		}
		dev.Crash()
		plan.Disarm()

		// The original is intact (possibly with a stale torn sidecar).
		entries, _, err := ReloadAll([]*simdisk.Device{dev}, 2, 1)
		if err != nil {
			t.Fatalf("reload after crashed repair: %v", err)
		}
		if len(entries) != 2 {
			t.Fatalf("entries after crashed repair = %d, want 2", len(entries))
		}

		// The rerun discards the stale sidecar and completes the repair.
		st, err := RepairTail([]*simdisk.Device{dev}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.FilesRewritten != 1 || st.GhostRecords != 1 {
			t.Fatalf("rerun stats = %+v", st)
		}
		if tornTail > 0 && st.StaleSidecars != 1 {
			t.Fatalf("rerun stats = %+v, want the torn sidecar discarded", st)
		}
		if st2, _ := RepairTail([]*simdisk.Device{dev}, 2); !st2.Zero() {
			t.Fatalf("third pass not a no-op: %+v", st2)
		}
		got, _, err := ReloadAll([]*simdisk.Device{dev}, ^uint32(0), 1)
		if err != nil || len(got) != 2 {
			t.Fatalf("final reload = %d entries, %v", len(got), err)
		}
	}
}

// TestReadPepochAppendOnly: the marker is an append-only record sequence —
// the last valid record wins, and a torn or corrupt tail (crash mid-append)
// falls back to the previous durable record instead of failing recovery.
func TestReadPepochAppendOnly(t *testing.T) {
	dev := simdisk.New("d", simdisk.Unlimited())

	append8 := func(pe uint32) {
		w := dev.Append(PepochFileName)
		var buf [8]byte
		buf[0] = byte(pe)
		buf[1] = byte(pe >> 8)
		buf[2] = byte(pe >> 16)
		buf[3] = byte(pe >> 24)
		x := pe ^ 0xFFFFFFFF
		buf[4] = byte(x)
		buf[5] = byte(x >> 8)
		buf[6] = byte(x >> 16)
		buf[7] = byte(x >> 24)
		w.Write(buf[:])
		w.Sync()
	}

	// Empty file (created, never written): pepoch 0.
	dev.Create(PepochFileName).Sync()
	if pe, err := ReadPepoch(dev); err != nil || pe != 0 {
		t.Fatalf("empty marker: pe=%d err=%v", pe, err)
	}
	append8(3)
	append8(7)
	if pe, err := ReadPepoch(dev); err != nil || pe != 7 {
		t.Fatalf("marker: pe=%d err=%v, want 7", pe, err)
	}
	// Torn half-record tail: previous record survives.
	w := dev.Append(PepochFileName)
	w.Write([]byte{9, 0, 0})
	w.Sync()
	if pe, err := ReadPepoch(dev); err != nil || pe != 7 {
		t.Fatalf("torn tail: pe=%d err=%v, want 7", pe, err)
	}
	// Corrupt full record tail: same fallback.
	dev2 := simdisk.New("d2", simdisk.Unlimited())
	w2 := dev2.Create(PepochFileName)
	w2.Write([]byte{5, 0, 0, 0, 0xFA, 0xFF, 0xFF, 0xFF}) // valid record pe=5
	w2.Write([]byte{6, 0, 0, 0, 0, 0, 0, 0})             // bad check word
	w2.Sync()
	if pe, err := ReadPepoch(dev2); err != nil || pe != 5 {
		t.Fatalf("corrupt tail: pe=%d err=%v, want 5", pe, err)
	}
}

// TestRepairPepochMarkerMisalignment is the regression test for a bug the
// torture subsystem found: a crash that tears the pepoch marker mid-append
// leaves a misaligned fragment, and an incarnation that APPENDS after it
// writes records the aligned ReadPepoch scan can never see — the durable
// pepoch silently freezes while acks keep flowing. RepairTail must
// truncate the marker back to a record boundary so resumed appends land
// aligned.
func TestRepairPepochMarkerMisalignment(t *testing.T) {
	dev := simdisk.New("d", simdisk.Unlimited())
	w := dev.Create(PepochFileName)
	w.Write([]byte{7, 0, 0, 0, 0xF8, 0xFF, 0xFF, 0xFF}) // valid record pe=7
	w.Write([]byte{9, 0, 0})                            // torn fragment (crash mid-append)
	w.Sync()

	st, err := RepairTail([]*simdisk.Device{dev}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.FilesRewritten != 1 || st.TornBytes != 3 {
		t.Fatalf("stats = %+v, want the 3-byte fragment dropped", st)
	}
	if st2, _ := RepairTail([]*simdisk.Device{dev}, 7); !st2.Zero() {
		t.Fatalf("second pass not a no-op: %+v", st2)
	}

	// The resumed incarnation appends aligned records, and the scan sees
	// them again.
	w2 := dev.Append(PepochFileName)
	w2.Write([]byte{12, 0, 0, 0, 0xF3, 0xFF, 0xFF, 0xFF}) // pe=12
	w2.Sync()
	if pe, err := ReadPepoch(dev); err != nil || pe != 12 {
		t.Fatalf("pepoch after repaired resume = %d, %v; want 12", pe, err)
	}
}
