package wal

// Tests for the core-scaling pieces of the durability pipeline: sharded
// release scanning (exactly-once resolution across shards), striped batch
// encoding (byte-identical to the serial encode), and the condition-variable
// WaitForEpoch in Off mode (no busy-polling when logging is inactive).

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
)

// TestShardedReleaseExactlyOnce drives many workers through a log set with
// several release shards and an OnRelease observer: every committed
// transaction must be surfaced exactly once across all shards, and every
// future must resolve durable — no record may be double-released by two
// shards or stranded between them.
func TestShardedReleaseExactlyOnce(t *testing.T) {
	b, m := bankSetup(t)
	devs := []*simdisk.Device{simdisk.New("d0", simdisk.Unlimited()), simdisk.New("d1", simdisk.Unlimited())}
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = 200 * time.Microsecond
	cfg.ReleaseShards = 4
	var obsMu sync.Mutex
	seen := map[uint64]int{}
	cfg.OnRelease = func(recs []*txn.Committed) {
		obsMu.Lock()
		for _, c := range recs {
			seen[uint64(c.TS)]++
		}
		obsMu.Unlock()
	}
	ls := NewLogSet(m, cfg, devs)
	ls.Start()

	const workers, per = 6, 40
	futs := make([][]*txn.Future, workers)
	ts := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		w := m.NewWorker()
		ls.AttachWorker(w)
		wg.Add(1)
		go func(w *txn.Worker, g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f := txn.NewFuture(time.Now())
				got, err := w.ExecuteFuture(f, b.Deposit,
					proc.Args{proc.A(tuple.I(int64(1 + (g*per+i)%20))), proc.A(tuple.I(1)), proc.A(tuple.I(1))}, false)
				if err != nil {
					t.Error(err)
					return
				}
				futs[g] = append(futs[g], f)
				ts[g] = append(ts[g], uint64(got))
			}
			w.Retire()
		}(w, g)
	}
	stopTick := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopTick:
				return
			case <-time.After(200 * time.Microsecond):
				m.AdvanceEpoch()
			}
		}
	}()
	wg.Wait()
	close(stopTick)
	ls.Close()

	total := 0
	for g := range futs {
		for i, f := range futs[g] {
			if _, err := f.Wait(); err != nil {
				t.Fatalf("worker %d txn %d: %v", g, i, err)
			}
			total++
			if n := seen[ts[g][i]]; n != 1 {
				t.Fatalf("worker %d txn %d (ts %d) released %d times, want exactly once",
					g, i, ts[g][i], n)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("observer saw %d distinct transactions, %d committed", len(seen), total)
	}
}

// TestStripedEncodeMatchesInline pins the striped-encode contract: splitting
// a batch range into concurrently encoded stripes written in order must
// produce bytes identical to the serial single-buffer encode — batch-file
// contents never depend on the stripe geometry.
func TestStripedEncodeMatchesInline(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	const n = 3 * stripeMinRecs
	for i := 0; i < n; i++ {
		mustExec(t, w, b, int64(1+i%20))
	}
	recs := w.Drain(^uint32(0))
	if len(recs) != n {
		t.Fatalf("drained %d records, want %d", len(recs), n)
	}
	inline := encodeRecords(nil, Command, recs)

	dev := simdisk.New("enc", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.EncodeStripes = 4
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	ls.Start()
	wtr := dev.Create("stripetest")
	ls.loggers[0].encodeStriped(wtr, recs)
	if err := wtr.Sync(); err != nil {
		t.Fatal(err)
	}
	r, err := dev.Open("stripetest")
	if err != nil {
		t.Fatal(err)
	}
	striped, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	ls.Close()
	if !bytes.Equal(inline, striped) {
		t.Fatalf("striped encode differs from inline: %d vs %d bytes", len(striped), len(inline))
	}
}

// TestWaitForEpochOffModeParksAndWakes pins the Off-mode WaitForEpoch fix:
// with logging inactive the persistent epoch shadows the safe epoch, and a
// waiter must park on the condition variable (not busy-poll) until epoch
// movement — routed through the manager's advance callback — wakes it.
func TestWaitForEpochOffModeParksAndWakes(t *testing.T) {
	_, m := bankSetup(t)
	ls := NewLogSet(m, Config{Kind: Off}, nil)
	if ls.Active() {
		t.Fatal("Off log set reports active")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		ls.WaitForEpoch(4)
	}()
	// The clock is at 1 (safe epoch 1 with no workers): the waiter must
	// park, not return.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("WaitForEpoch(4) returned with the safe epoch at 1")
	default:
	}
	// Each advance broadcasts through the manager callback; the third
	// brings the safe epoch to 4 and must wake the waiter.
	m.AdvanceEpoch()
	m.AdvanceEpoch()
	m.AdvanceEpoch()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForEpoch(4) never woke although the safe epoch reached 4")
	}
	ls.Close()
}
