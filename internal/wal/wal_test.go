package wal

import (
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/workload"
)

func bankSetup(t testing.TB) (*workload.Bank, *txn.Manager) {
	t.Helper()
	b := workload.NewBank(20)
	b.Populate(workload.DirectPopulate{})
	return b, txn.NewManager(b.DB(), txn.DefaultConfig())
}

func mustExec(t testing.TB, w *txn.Worker, b *workload.Bank, acct int64) engine.TS {
	t.Helper()
	ts, err := w.Execute(b.Deposit,
		proc.Args{proc.A(tuple.I(acct)), proc.A(tuple.I(7)), proc.A(tuple.I(1))}, false, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestRecordRoundTripCommand(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	mustExec(t, w, b, 1)
	recs := w.Drain(10)
	if len(recs) != 1 {
		t.Fatal("expected one record")
	}
	buf := encodeRecord(nil, Command, recs[0])
	e, n, err := decodeRecord(buf, Command)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d/%d", err, n, len(buf))
	}
	if e.Kind != EntryCommand || e.TS != recs[0].TS || e.ProcID != b.Deposit.ID() {
		t.Errorf("entry = %+v", e)
	}
	if len(e.Args) != 3 || e.Args[0][0].Int() != 1 {
		t.Errorf("args = %v", e.Args)
	}
}

func TestRecordRoundTripLogicalAndPhysical(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	mustExec(t, w, b, 2)
	recs := w.Drain(10)
	for _, kind := range []Kind{Logical, Physical} {
		buf := encodeRecord(nil, kind, recs[0])
		e, n, err := decodeRecord(buf, kind)
		if err != nil || n != len(buf) {
			t.Fatalf("%v decode: %v", kind, err)
		}
		if e.Kind != EntryTuple || len(e.Writes) != len(recs[0].Writes) {
			t.Fatalf("%v writes = %d, want %d", kind, len(e.Writes), len(recs[0].Writes))
		}
		for i, wi := range e.Writes {
			orig := recs[0].Writes[i]
			if wi.TableID != orig.Table.ID() || wi.Key != orig.Key || !wi.After.Equal(orig.After) {
				t.Errorf("%v write %d mismatch: %+v vs %+v", kind, i, wi, orig)
			}
		}
		if kind == Physical && e.Writes[0].Slot != recs[0].Writes[0].Slot {
			t.Error("physical record lost the slot")
		}
	}
}

func TestRecordSizeOrdering(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	// Single-write transactions: PL > LL, but CL is not necessarily the
	// smallest (the paper's Table 1 reports LL/CL = 0.92 on Smallbank).
	mustExec(t, w, b, 3)
	recs := w.Drain(10)
	pl := len(encodeRecord(nil, Physical, recs[0]))
	ll := len(encodeRecord(nil, Logical, recs[0]))
	if pl <= ll {
		t.Errorf("sizes PL=%d LL=%d, want PL > LL", pl, ll)
	}
	// Multi-write transactions (Transfer: three writes): CL wins clearly,
	// which is the TPC-C effect behind Table 1's 10x ratios.
	if _, err := w.Execute(b.Transfer,
		proc.Args{proc.A(tuple.I(1)), proc.A(tuple.I(5))}, false, time.Now()); err != nil {
		t.Fatal(err)
	}
	recs = w.Drain(10)
	pl = len(encodeRecord(nil, Physical, recs[0]))
	ll = len(encodeRecord(nil, Logical, recs[0]))
	cl := len(encodeRecord(nil, Command, recs[0]))
	if !(pl > ll && ll > cl) {
		t.Errorf("multi-write sizes PL=%d LL=%d CL=%d, want PL > LL > CL", pl, ll, cl)
	}
}

func TestAdHocUnderCommandLogging(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	if _, err := w.Execute(b.Deposit,
		proc.Args{proc.A(tuple.I(4)), proc.A(tuple.I(7)), proc.A(tuple.I(1))}, true, time.Now()); err != nil {
		t.Fatal(err)
	}
	recs := w.Drain(10)
	buf := encodeRecord(nil, Command, recs[0])
	e, _, err := decodeRecord(buf, Command)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != EntryTuple {
		t.Error("ad-hoc txn under CL must decode as a tuple entry")
	}
	if len(e.Writes) == 0 {
		t.Error("ad-hoc entry lost its write set")
	}
}

func TestDistUnderCommandLogging(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	fut := txn.NewFuture(time.Now())
	if _, err := w.ExecuteFutureDist(fut, b.Deposit,
		proc.Args{proc.A(tuple.I(6)), proc.A(tuple.I(7)), proc.A(tuple.I(1))}); err != nil {
		t.Fatal(err)
	}
	recs := w.Drain(10)
	if len(recs) != 1 || !recs[0].Dist {
		t.Fatalf("expected one Dist commit record, got %+v", recs)
	}
	// Under every logging kind, a distributed txn decodes as a tuple entry
	// carrying the Dist mark — replay reinstalls images, never re-executes.
	for _, kind := range []Kind{Command, Logical, Physical} {
		buf := encodeRecord(nil, kind, recs[0])
		e, n, err := decodeRecord(buf, kind)
		if err != nil || n != len(buf) {
			t.Fatalf("%v decode: %v", kind, err)
		}
		if e.Kind != EntryTuple {
			t.Errorf("%v: dist txn must decode as a tuple entry, got %v", kind, e.Kind)
		}
		if !e.Dist {
			t.Errorf("%v: entry lost the Dist mark", kind)
		}
		if len(e.Writes) != len(recs[0].Writes) {
			t.Errorf("%v: writes = %d, want %d", kind, len(e.Writes), len(recs[0].Writes))
		}
	}
	// The flag layout keeps ad-hoc and dist distinguishable.
	buf := encodeRecord(nil, Command, recs[0])
	if e, _, _ := decodeRecord(buf, Command); e == nil || e.ProcID != 0 || len(e.Args) != 0 {
		t.Errorf("dist entry should carry no command payload: %+v", e)
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	b, m := bankSetup(t)
	w := m.NewWorker()
	mustExec(t, w, b, 5)
	recs := w.Drain(10)
	buf := encodeRecord(nil, Command, recs[0])

	// Truncated at every possible point: decode must return n=0 (torn),
	// never an error or a bogus entry.
	for cut := 0; cut < len(buf); cut++ {
		e, n, err := decodeRecord(buf[:cut], Command)
		if err != nil || n != 0 || e != nil {
			t.Fatalf("cut=%d: e=%v n=%d err=%v", cut, e, n, err)
		}
	}
	// Flipped payload byte: CRC catches it.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF
	if e, n, _ := decodeRecord(bad, Command); e != nil || n != 0 {
		t.Error("corrupt record accepted")
	}
}

// logSetFixture runs transactions through a live LogSet.
func logSetFixture(t *testing.T, kind Kind, devices int, txns int) (*workload.Bank, *txn.Manager, *LogSet, []*simdisk.Device) {
	t.Helper()
	b, m := bankSetup(t)
	var devs []*simdisk.Device
	for i := 0; i < devices; i++ {
		devs = append(devs, simdisk.New("d", simdisk.Unlimited()))
	}
	cfg := DefaultConfig(kind)
	cfg.BatchEpochs = 2
	cfg.FlushInterval = 200 * time.Microsecond
	ls := NewLogSet(m, cfg, devs)
	w := m.NewWorker()
	ls.AttachWorker(w)
	ls.Start()
	for i := 0; i < txns; i++ {
		mustExec(t, w, b, int64(1+i%20))
		if i%5 == 4 {
			m.AdvanceEpoch()
		}
	}
	w.Retire()
	m.AdvanceEpoch()
	ls.Close()
	return b, m, ls, devs
}

func TestLogSetWritesBatches(t *testing.T) {
	_, _, ls, devs := logSetFixture(t, Command, 1, 25)
	// 25 txns over epochs 1..6, batches of 2 epochs -> batches 0..3.
	batches, err := Discover(devs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) < 2 {
		t.Fatalf("batches = %d, want several", len(batches))
	}
	pe := ls.PersistedEpoch()
	if pe < 6 {
		t.Fatalf("pepoch = %d", pe)
	}
	entries, stats, err := ReloadAll(devs, pe, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 25 {
		t.Fatalf("reloaded %d entries (stats %+v)", len(entries), stats)
	}
	// Strict TS order.
	for i := 1; i < len(entries); i++ {
		if entries[i].TS <= entries[i-1].TS {
			t.Fatal("entries not in commit order")
		}
	}
	// pepoch durable marker readable.
	got, err := ReadPepoch(devs[0])
	if err != nil || got != pe {
		t.Errorf("ReadPepoch = %d, %v; want %d", got, err, pe)
	}
}

func TestLogSetMultiDevice(t *testing.T) {
	_, m, _, devs := logSetFixture(t, Logical, 2, 30)
	_ = m
	// Both devices must hold log files (workers round-robin on loggers;
	// with one worker only one logger gets data, so check via discover).
	batches, err := Discover(devs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range batches {
		total += len(b.Files)
	}
	if total == 0 {
		t.Fatal("no files written")
	}
	entries, _, err := ReloadAll(devs, ^uint32(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 30 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = time.Hour // no automatic flushes
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	// Commit 5 txns in epoch 1; flush them (epoch 1 safe after advancing).
	for i := 0; i < 5; i++ {
		mustExec(t, w, b, int64(1+i))
	}
	m.AdvanceEpoch() // epoch 2
	w.Heartbeat()    // idle worker publishes the new epoch
	// Manually drive one flush+pepoch round.
	ls.loggers[0].flush(m.SafeEpoch())
	ls.updatePepoch()
	peBefore := ls.PersistedEpoch()
	if peBefore != 1 {
		t.Fatalf("pepoch = %d, want 1", peBefore)
	}
	// 3 more txns in epoch 2, never flushed.
	for i := 0; i < 3; i++ {
		mustExec(t, w, b, int64(10+i))
	}
	dev.Crash()
	// Recovery: pepoch says 1; reload drops anything beyond it.
	pe, err := ReadPepoch(dev)
	if err != nil {
		t.Fatal(err)
	}
	if pe != 1 {
		t.Fatalf("recovered pepoch = %d", pe)
	}
	entries, _, err := ReloadAll([]*simdisk.Device{dev}, pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("recovered %d entries, want the 5 durable ones", len(entries))
	}
}

func TestReleaseCallbackAfterPepoch(t *testing.T) {
	b, m := bankSetup(t)
	dev := simdisk.New("d", simdisk.Unlimited())
	var released []*txn.Committed
	cfg := DefaultConfig(Command)
	cfg.FlushInterval = time.Hour
	cfg.OnRelease = func(cs []*txn.Committed) { released = append(released, cs...) }
	ls := NewLogSet(m, cfg, []*simdisk.Device{dev})
	w := m.NewWorker()
	ls.AttachWorker(w)
	ts := mustExec(t, w, b, 1)
	// Not flushed yet: nothing released.
	if len(released) != 0 {
		t.Fatal("released before persistence")
	}
	m.AdvanceEpoch()
	w.Heartbeat()
	ls.loggers[0].flush(m.SafeEpoch())
	ls.updatePepoch()
	if len(released) != 1 || released[0].TS != ts {
		t.Fatalf("released = %v", released)
	}
}

func TestBatchFileNameParse(t *testing.T) {
	name := BatchFileName(3, 17)
	b, err := parseBatchName(name)
	if err != nil || b != 17 {
		t.Errorf("parse(%q) = %d, %v", name, b, err)
	}
	if _, err := parseBatchName("garbage"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseBatchName("log-000-xyz"); err == nil {
		t.Error("non-numeric batch accepted")
	}
}

func TestOffLogSetIsInert(t *testing.T) {
	_, m := bankSetup(t)
	ls := NewLogSet(m, DefaultConfig(Off), nil)
	ls.Start()
	w := m.NewWorker()
	ls.AttachWorker(w) // no-op
	m.AdvanceEpoch()
	if pe := ls.PersistedEpoch(); pe != m.SafeEpoch() {
		t.Errorf("off-mode pepoch = %d, want safe epoch %d", pe, m.SafeEpoch())
	}
	ls.Close()
}

func TestFileHeaderRoundTrip(t *testing.T) {
	hdr := appendFileHeader(nil, Logical, 5, 42)
	kind, logger, batch, rest, err := decodeFileHeader(hdr)
	if err != nil || kind != Logical || logger != 5 || batch != 42 || len(rest) != 0 {
		t.Errorf("header round trip: %v %d %d %v", kind, logger, batch, err)
	}
	if _, _, _, _, err := decodeFileHeader(hdr[:4]); err == nil {
		t.Error("short header accepted")
	}
	bad := append([]byte(nil), hdr...)
	bad[0] = 0
	if _, _, _, _, err := decodeFileHeader(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestKindString(t *testing.T) {
	if Off.String() != "OFF" || Physical.String() != "PL" ||
		Logical.String() != "LL" || Command.String() != "CL" {
		t.Error("kind names wrong")
	}
}
