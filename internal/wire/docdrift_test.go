package wire

import (
	"bufio"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestDocsProtocolDrift enforces the spec-first contract: docs/PROTOCOL.md
// is the normative protocol reference, and this test fails when the Go
// constants diverge from its tables — in either direction. A frame type,
// status code, or protocol constant added (or renumbered) in code without
// updating the document breaks the build, and so does a documented row
// with no matching constant.
func TestDocsProtocolDrift(t *testing.T) {
	f, err := os.Open("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("normative spec missing: %v", err)
	}
	defer f.Close()

	// A normative row is `| `Name` | value | ...` — backticked identifier
	// first, integer (decimal or 0x-hex, possibly backticked) second.
	row := regexp.MustCompile("^\\|\\s*`([A-Za-z0-9]+)`\\s*\\|\\s*`?(0x[0-9A-Fa-f]+|[0-9]+)`?\\s*\\|")

	docFrames := map[string]uint8{}
	docCodes := map[string]uint16{}
	docConsts := map[string]uint64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := row.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		val, err := strconv.ParseUint(strings.TrimPrefix(m[2], "0x"), map[bool]int{true: 16, false: 10}[strings.HasPrefix(m[2], "0x")], 64)
		if err != nil {
			t.Fatalf("row %q: unparseable value %q: %v", name, m[2], err)
		}
		switch {
		case strings.HasPrefix(name, "Frame"):
			docFrames[name] = uint8(val)
		case strings.HasPrefix(name, "Code"):
			docCodes[name] = uint16(val)
		default:
			docConsts[name] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Code → doc: every constant the package defines must be documented
	// with the same value.
	for v, name := range frameNames {
		if dv, ok := docFrames[name]; !ok {
			t.Errorf("%s (= %d) is not in docs/PROTOCOL.md's frame table", name, v)
		} else if dv != v {
			t.Errorf("%s: code says %d, docs/PROTOCOL.md says %d", name, v, dv)
		}
	}
	for v, name := range codeNames {
		if dv, ok := docCodes[name]; !ok {
			t.Errorf("%s (= %d) is not in docs/PROTOCOL.md's status-code table", name, v)
		} else if dv != v {
			t.Errorf("%s: code says %d, docs/PROTOCOL.md says %d", name, v, dv)
		}
	}

	// Doc → code: the document may not describe frames or codes that do
	// not exist (a deleted constant must leave the spec too).
	if len(docFrames) != len(frameNames) {
		t.Errorf("docs/PROTOCOL.md documents %d frame types, code defines %d", len(docFrames), len(frameNames))
	}
	if len(docCodes) != len(codeNames) {
		t.Errorf("docs/PROTOCOL.md documents %d status codes, code defines %d", len(docCodes), len(codeNames))
	}

	// Protocol constants.
	want := map[string]uint64{
		"Magic":         uint64(Magic),
		"V1":            uint64(V1),
		"HeaderSize":    HeaderSize,
		"MaxPayload":    MaxPayload,
		"DefaultWindow": DefaultWindow,
	}
	for name, wv := range want {
		if dv, ok := docConsts[name]; !ok {
			t.Errorf("constant %s (= %d) is not in docs/PROTOCOL.md's constants table", name, wv)
		} else if dv != wv {
			t.Errorf("constant %s: code says %d, docs/PROTOCOL.md says %d", name, wv, dv)
		}
	}
	for name := range docConsts {
		if _, ok := want[name]; !ok {
			t.Errorf("docs/PROTOCOL.md documents constant %s which the code does not define", name)
		}
	}
}
