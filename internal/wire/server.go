package wire

import (
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pacman"
)

// ServerConfig tunes a Server.
type ServerConfig struct {
	// Workers is the frontend session-pool size the server multiplexes
	// every connection onto (default 4).
	Workers int
	// Queue is the frontend admission-queue capacity; a full queue surfaces
	// to clients as backpressure frames (default 4×Workers).
	Queue int
	// Window is the per-connection in-flight grant announced in HelloAck;
	// submissions beyond it are answered with backpressure (default
	// DefaultWindow).
	Window int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// SubmitMode classifies an admitted request by the frame that carried it:
// a plain or ad-hoc Submit, or one of the two 2PC phases a shard router
// drives cross-shard commits through.
type SubmitMode uint8

// Submit modes.
const (
	ModeNormal SubmitMode = iota
	ModeAdHoc
	ModePrepare
	ModeDecide
)

// Waiter is the durable-commit handle a Backend returns for an admitted
// request; *pacman.Future satisfies it.
type Waiter interface {
	Wait() (pacman.TS, error)
}

// Backend is the serving side of a Server: what a connection's admitted
// requests are submitted to. Attach installs the standard backend — a
// frontend over a pacman instance; a shard router installs its routing
// frontside through AttachBackend, which is how one Server implementation
// speaks PAC1 for both a single shard and a whole cluster.
//
// TrySubmit follows the frontend's non-blocking admission contract:
// (nil, false) means "not admitted right now" (queue full — the server
// answers with a backpressure frame); a non-nil Waiter is answered with a
// Result frame when it resolves, whether or not ok is true (a terminal
// error rides the Waiter).
type Backend interface {
	// Procs is the procedure table in procedure-ID order (HelloAck payload).
	Procs() []string
	// TrySubmit admits one request for the named procedure. A non-zero
	// deadline (already anchored to the server's clock) arms fail-fast
	// expiry: the Waiter resolves ErrDeadlineExceeded if the commit is not
	// durable in time.
	TrySubmit(mode SubmitMode, proc string, args pacman.Args, deadline time.Time) (Waiter, bool)
	// QueueDepth and QueueCap describe the admission queue for
	// backpressure frames.
	QueueDepth() int
	QueueCap() int
	// Brownout reports whether the backend's health watchdog is shedding
	// new work; the server answers submissions with Backpressure frames
	// instead of admitting them while it holds.
	Brownout() bool
	// Close retires the backend (server Drain/Close).
	Close()
}

// feState is the serving state a connection snapshots per request: the
// backend of the CURRENT incarnation and its procedure table.
// Attach/AttachBackend swap it atomically across a crash→Restart cycle, so
// connections that survive the daemon's restart (or arrive mid-swap)
// always submit to the live incarnation.
type feState struct {
	be    Backend
	procs []string
}

// feBackend adapts a pacman Frontend to the Backend seam, mapping the 2PC
// phases onto the distributed (value-logged) submission path.
type feBackend struct {
	fe    *pacman.Frontend
	procs []string
}

func (b *feBackend) Procs() []string { return b.procs }

func (b *feBackend) TrySubmit(mode SubmitMode, proc string, args pacman.Args, deadline time.Time) (Waiter, bool) {
	var fut *pacman.Future
	var ok bool
	switch mode {
	case ModeAdHoc:
		fut, ok = b.fe.TrySubmitAdHocDeadline(proc, args, deadline)
	case ModePrepare, ModeDecide:
		fut, ok = b.fe.TrySubmitDistDeadline(proc, args, deadline)
	default:
		fut, ok = b.fe.TrySubmitDeadline(proc, args, deadline)
	}
	if fut == nil {
		return nil, ok
	}
	return fut, ok
}

func (b *feBackend) QueueDepth() int { return b.fe.QueueDepth() }
func (b *feBackend) QueueCap() int   { return b.fe.QueueCap() }
func (b *feBackend) Brownout() bool  { return b.fe.Brownout() }
func (b *feBackend) Close()          { b.fe.Close() }

// Server speaks the wire protocol over any set of TCP/unix listeners,
// multiplexing every connection's pipelined submissions onto one pacman
// Frontend. It is the library form of pacmand: the daemon binary, the
// loopback benchmark, and the network torture cycle all embed it.
//
// Lifecycle: NewServer → Attach(db) → Listen(...) → serve; then either
// Drain (graceful: stop accepting, reject new work with CodeDraining,
// settle in-flight futures, retire the pool) or Kill (abrupt: sever every
// connection, simulating the daemon process dying with its instance).
// After a Kill, Attach a restarted instance and Listen again — the same
// Server object serves the next incarnation, which is exactly what the
// torture cycle exercises.
type Server struct {
	cfg   ServerConfig
	state atomic.Pointer[feState]

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*srvConn]struct{}
	draining  atomic.Bool
	acceptWG  sync.WaitGroup
}

// NewServer builds a server; Attach an instance before Listen.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4 * cfg.Workers
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	return &Server{
		cfg:       cfg,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*srvConn]struct{}{},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Attach binds the server to a (started) database instance: it opens a
// frontend over it and publishes the procedure table. Re-attaching after a
// crash→Restart swaps the serving state; the previous incarnation's
// frontend is closed (safe on a crashed instance — its futures have
// already resolved ErrCrashed).
func (s *Server) Attach(db *pacman.DB) error {
	fe, err := db.NewFrontend(pacman.FrontendConfig{Workers: s.cfg.Workers, Queue: s.cfg.Queue})
	if err != nil {
		return err
	}
	s.AttachBackend(&feBackend{fe: fe, procs: db.Procedures()})
	return nil
}

// AttachBackend installs a custom serving backend — the seam the shard
// router's PAC1 frontside plugs into. Semantics match Attach: the previous
// incarnation's backend is closed and draining state is reset.
func (s *Server) AttachBackend(be Backend) {
	old := s.state.Swap(&feState{be: be, procs: be.Procs()})
	s.draining.Store(false)
	if old != nil {
		old.be.Close()
	}
}

// Listen opens a listener ("tcp" or "unix") and starts accepting. A stale
// unix socket file left by a killed incarnation is removed and retried.
// The returned address is the bound one (useful with ":0").
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	l, err := net.Listen(network, addr)
	if err != nil && network == "unix" {
		// A previous incarnation's socket file: remove and retry once.
		if rmErr := os.Remove(addr); rmErr == nil {
			l, err = net.Listen(network, addr)
		}
	}
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	s.acceptWG.Add(1)
	go s.acceptLoop(l)
	return l.Addr(), nil
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.acceptWG.Done()
	for {
		nc, err := l.Accept()
		if err != nil {
			return // listener closed (Drain/Kill)
		}
		c := &srvConn{s: s, nc: nc, out: make(chan outMsg, s.cfg.Window+8), closed: make(chan struct{})}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.writeLoop()
		go c.readLoop()
	}
}

// closeListeners stops accepting new connections.
func (s *Server) closeListeners() {
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
		delete(s.listeners, l)
	}
	s.mu.Unlock()
	s.acceptWG.Wait()
}

// snapshotConns copies the live connection set.
func (s *Server) snapshotConns() []*srvConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// Drain is the graceful shutdown: stop accepting, announce GoAway on every
// connection, reject new submissions with CodeDraining, wait (bounded by
// timeout) for every in-flight future to settle and its result frame to be
// queued, then sever connections and retire the frontend pool. The caller
// closes the database afterwards, which flushes group commit.
func (s *Server) Drain(timeout time.Duration) {
	s.draining.Store(true)
	s.closeListeners()
	conns := s.snapshotConns()
	for _, c := range conns {
		c.send(outMsg{h: Header{Type: FrameGoAway, Code: CodeDraining}})
	}
	deadline := time.Now().Add(timeout)
	for _, c := range conns {
		done := make(chan struct{})
		go func(c *srvConn) { c.inflight.Wait(); close(done) }(c)
		select {
		case <-done:
		case <-time.After(time.Until(deadline)):
			s.logf("wire: drain timeout with %d requests in flight on %s", c.inflightN.Load(), c.nc.RemoteAddr())
		}
		// Give the writer a moment to flush queued results before severing.
		c.flushAndClose()
	}
	if st := s.state.Load(); st != nil {
		st.be.Close()
	}
}

// Kill is the abrupt stop: listeners and connections are severed
// immediately, mid-frame, with no GoAway — the network-visible equivalent
// of the daemon process dying. The Server object remains reusable:
// Attach a recovered instance and Listen again.
func (s *Server) Kill() {
	s.closeListeners()
	for _, c := range s.snapshotConns() {
		c.close()
	}
}

// Close shuts the server down for good: Kill plus frontend retirement.
func (s *Server) Close() {
	s.Kill()
	if st := s.state.Swap(nil); st != nil {
		st.be.Close()
	}
}

// outMsg is one frame queued to a connection's writer; a flush sentinel
// (nil frame, non-nil flush channel) is acknowledged by the writer once
// every frame queued before it has been written.
type outMsg struct {
	h       Header
	payload []byte
	flush   chan struct{}
}

// srvConn is one client connection: a reader goroutine decoding pipelined
// frames, a writer goroutine serializing responses, and one goroutine per
// in-flight future waiting for its resolution — which is what lets results
// complete out of order as epochs release.
type srvConn struct {
	s         *Server
	nc        net.Conn
	out       chan outMsg
	closed    chan struct{}
	closeOnce sync.Once

	inflight  sync.WaitGroup
	inflightN atomic.Int32
}

func (c *srvConn) close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
	})
}

// flushAndClose lets the writer drain queued frames before severing (drain
// path only; Kill severs immediately). The flush sentinel rides the out
// channel behind every already-queued frame, so its acknowledgement means
// those frames reached the socket.
func (c *srvConn) flushAndClose() {
	fl := make(chan struct{})
	c.send(outMsg{flush: fl})
	select {
	case <-fl:
	case <-c.closed:
	case <-time.After(time.Second):
	}
	c.close()
}

// send queues one frame unless the connection is closed.
func (c *srvConn) send(m outMsg) {
	select {
	case c.out <- m:
	case <-c.closed:
	}
}

func (c *srvConn) writeLoop() {
	for {
		select {
		case m := <-c.out:
			if m.flush != nil {
				close(m.flush)
				continue
			}
			if err := WriteFrame(c.nc, m.h, m.payload); err != nil {
				c.close()
				return
			}
		case <-c.closed:
			return
		}
	}
}

// reject answers a handshake failure with a coded GoAway and closes.
func (c *srvConn) reject(code uint16) {
	c.send(outMsg{h: Header{Type: FrameGoAway, Code: code}})
	c.flushAndClose()
}

func (c *srvConn) readLoop() {
	defer c.close()

	// Handshake: exactly one Hello, answered with HelloAck carrying the
	// negotiated version, the in-flight window, and the procedure table.
	var buf []byte
	h, p, err := ReadFrame(c.nc, buf)
	if err != nil {
		return
	}
	if h.Type != FrameHello {
		c.reject(CodeBadFrame)
		return
	}
	minV, maxV, err := ParseHello(p)
	if err != nil {
		c.reject(CodeBadFrame)
		return
	}
	ver, err := NegotiateVersion(minV, maxV)
	if err != nil {
		c.reject(CodeBadVersion)
		return
	}
	st := c.s.state.Load()
	if st == nil || c.s.draining.Load() {
		c.reject(CodeDraining)
		return
	}
	ack := AppendHelloAck(nil, ver, uint32(c.s.cfg.Window), st.procs)
	c.send(outMsg{h: Header{Type: FrameHelloAck, ReqID: h.ReqID}, payload: ack})

	for {
		h, p, err := ReadFrame(c.nc, buf)
		if err != nil {
			return
		}
		buf = p // frames are consumed synchronously; reuse the read buffer
		switch h.Type {
		case FrameSubmit, FramePrepare, FrameDecide:
			c.handleSubmit(h, p)
		case FramePing:
			c.send(outMsg{h: Header{Type: FramePong, ReqID: h.ReqID}})
		default:
			c.s.logf("wire: %s: unexpected %s", c.nc.RemoteAddr(), FrameName(h.Type))
			c.reject(CodeBadFrame)
			return
		}
	}
}

// handleSubmit admits one pipelined submission. Rejections (draining,
// window exceeded, queue full) are answered inline without executing
// anything; admitted requests get a per-future goroutine that sends the
// Result frame whenever the durable-commit future resolves — out of order
// relative to other requests on the same connection.
func (c *srvConn) handleSubmit(h Header, p []byte) {
	st := c.s.state.Load()
	if st == nil || c.s.draining.Load() {
		c.send(outMsg{h: Header{Type: FrameResult, Code: CodeDraining, ReqID: h.ReqID}})
		return
	}
	procID, timeout, args, err := ParseSubmit(p, h.Flags)
	if err != nil {
		c.send(outMsg{h: Header{Type: FrameResult, Code: CodeBadFrame, ReqID: h.ReqID},
			payload: AppendResultErr(nil, err.Error())})
		return
	}
	if int(procID) >= len(st.procs) {
		c.send(outMsg{h: Header{Type: FrameResult, Code: CodeUnknownProc, ReqID: h.ReqID},
			payload: AppendResultErr(nil, fmt.Sprintf("proc id %d outside table of %d", procID, len(st.procs)))})
		return
	}
	if st.be.Brownout() {
		// Health watchdog brownout: shed at the wire before the frontend
		// sees the request. Backpressure (not a terminal Result) so the
		// client's pacing/retry machinery handles it like a full queue.
		c.backpressure(h.ReqID, st)
		return
	}
	if int(c.inflightN.Load()) >= c.s.cfg.Window {
		c.backpressure(h.ReqID, st)
		return
	}
	name := st.procs[procID]
	mode := ModeNormal
	switch {
	case h.Type == FramePrepare:
		mode = ModePrepare
	case h.Type == FrameDecide:
		mode = ModeDecide
	case h.Flags&FlagAdHoc != 0:
		mode = ModeAdHoc
	}
	// The wire carries a relative timeout (clock-skew safe); anchor it to
	// this server's clock at receipt.
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	fut, ok := st.be.TrySubmit(mode, name, args, deadline)
	if fut == nil {
		// Queue full: the request was never executed — backpressure, the
		// client retries. This is the admission-control path that keeps a
		// saturated Frontend from either blocking the reader (head-of-line
		// stalling every pipelined request) or dropping the connection.
		c.backpressure(h.ReqID, st)
		return
	}
	_ = ok // !ok with a non-nil future carries a terminal error; respond normally
	c.inflightN.Add(1)
	c.inflight.Add(1)
	go c.respond(h.ReqID, fut, st)
}

func (c *srvConn) backpressure(reqID uint64, st *feState) {
	c.send(outMsg{
		h:       Header{Type: FrameBackpressure, Code: CodeBackpressure, ReqID: reqID},
		payload: AppendBackpressure(nil, uint32(st.be.QueueDepth()), uint32(st.be.QueueCap())),
	})
}

// respond waits one future out and sends its Result frame.
func (c *srvConn) respond(reqID uint64, fut Waiter, st *feState) {
	defer c.inflight.Done()
	defer c.inflightN.Add(-1)
	ts, err := fut.Wait()
	code, msg := ErrorCode(err)
	if code == CodeBackpressure {
		// The backend shed the admitted request after the fact (brownout, or
		// a router's open circuit breaker). The guarantee is identical to a
		// full queue — never executed — so surface the same Backpressure
		// frame and let the client's retry/backoff machinery handle it.
		c.backpressure(reqID, st)
		return
	}
	h := Header{Type: FrameResult, Code: code, ReqID: reqID}
	if code == CodeOK {
		c.send(outMsg{h: h, payload: AppendResultOK(nil, uint64(ts))})
		return
	}
	c.send(outMsg{h: h, payload: AppendResultErr(nil, msg)})
}
