package wire

import (
	"net"
	"testing"
	"time"

	"pacman"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// launchServer boots a Bank instance behind a wire Server on an ephemeral
// TCP port. The epoch interval is a knob: long epochs keep durable-commit
// futures unresolved, which is how the backpressure test saturates the
// in-flight window deterministically.
func launchServer(t *testing.T, cfg ServerConfig, epoch time.Duration) (*pacman.DB, *Server, net.Addr) {
	t.Helper()
	spec := workload.Spec(workload.NewBank(64))
	bp := pacman.Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
	db, err := pacman.Launch(bp, pacman.Options{Logging: pacman.CommandLogging, EpochInterval: epoch})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	if err := srv.Attach(db); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close()
	})
	return db, srv, addr
}

// rawConn is a frame-level test client: no retry, no window management —
// it sees exactly what the server puts on the wire.
type rawConn struct {
	t     *testing.T
	nc    net.Conn
	procs map[string]uint32
	buf   []byte
}

func dialRaw(t *testing.T, addr net.Addr) *rawConn {
	t.Helper()
	nc, err := net.Dial(addr.Network(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (c *rawConn) write(h Header, payload []byte) {
	c.t.Helper()
	if err := WriteFrame(c.nc, h, payload); err != nil {
		c.t.Fatalf("write %s: %v", FrameName(h.Type), err)
	}
}

func (c *rawConn) read() (Header, []byte) {
	c.t.Helper()
	h, p, err := ReadFrame(c.nc, c.buf)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	c.buf = p
	return h, append([]byte(nil), p...)
}

// handshake runs Hello/HelloAck and indexes the procedure table.
func (c *rawConn) handshake() {
	c.t.Helper()
	c.write(Header{Type: FrameHello}, AppendHello(nil, V1, V1))
	h, p := c.read()
	if h.Type != FrameHelloAck {
		c.t.Fatalf("handshake answered with %s code %s", FrameName(h.Type), CodeName(h.Code))
	}
	_, _, procs, err := ParseHelloAck(p)
	if err != nil {
		c.t.Fatal(err)
	}
	c.procs = make(map[string]uint32, len(procs))
	for i, name := range procs {
		c.procs[name] = uint32(i)
	}
}

func (c *rawConn) deposit(reqID uint64, acct, amount int64) {
	c.t.Helper()
	id, ok := c.procs["Deposit"]
	if !ok {
		c.t.Fatalf("Deposit missing from proc table %v", c.procs)
	}
	args := proc.Args{proc.A(tuple.I(acct)), proc.A(tuple.I(amount)), proc.A(tuple.I(1))}
	c.write(Header{Type: FrameSubmit, ReqID: reqID}, AppendSubmit(nil, id, args))
}

// TestServerPipelined floods one connection with pipelined submissions and
// checks that every request id comes back exactly once with CodeOK and a
// real commit timestamp — completion order is explicitly NOT asserted,
// because results resolve as epochs release, not in submit order.
func TestServerPipelined(t *testing.T) {
	_, _, addr := launchServer(t, ServerConfig{Workers: 4, Queue: 256, Window: 128}, time.Millisecond)
	c := dialRaw(t, addr)
	c.handshake()

	const n = 64
	for i := uint64(0); i < n; i++ {
		c.deposit(i, int64(i%16), 1)
	}
	seen := map[uint64]bool{}
	inOrder := true
	var prev uint64
	for i := 0; i < n; i++ {
		h, p := c.read()
		if h.Type != FrameResult || h.Code != CodeOK {
			t.Fatalf("result %d: %s code %s", i, FrameName(h.Type), CodeName(h.Code))
		}
		if seen[h.ReqID] {
			t.Fatalf("request %d answered twice", h.ReqID)
		}
		seen[h.ReqID] = true
		if i > 0 && h.ReqID < prev {
			inOrder = false
		}
		prev = h.ReqID
		if ts, _, err := ParseResult(h.Code, p); err != nil || ts == 0 {
			t.Fatalf("result %d: ts %d err %v", h.ReqID, ts, err)
		}
	}
	if len(seen) != n {
		t.Fatalf("settled %d/%d requests", len(seen), n)
	}
	t.Logf("pipelined %d requests, strictly in submit order: %v", n, inOrder)
}

// TestServerBackpressure saturates a tiny frontend (1 worker, queue of 1)
// under a long epoch so admitted futures stay pending, and checks that the
// overflow comes back as Backpressure frames — never dropped connections,
// never blocked pipelines — while the admitted prefix still commits.
func TestServerBackpressure(t *testing.T) {
	_, _, addr := launchServer(t, ServerConfig{Workers: 1, Queue: 1, Window: 4}, 200*time.Millisecond)
	c := dialRaw(t, addr)
	c.handshake()

	const n = 24
	for i := uint64(0); i < n; i++ {
		c.deposit(i, 3, 1)
	}
	var oks, bps int
	for i := 0; i < n; i++ {
		h, p := c.read()
		switch h.Type {
		case FrameResult:
			if h.Code != CodeOK {
				t.Fatalf("result code %s", CodeName(h.Code))
			}
			oks++
		case FrameBackpressure:
			_, capacity, err := ParseBackpressure(p)
			if err != nil || capacity == 0 {
				t.Fatalf("backpressure payload: cap %d err %v", capacity, err)
			}
			bps++
		default:
			t.Fatalf("unexpected %s", FrameName(h.Type))
		}
	}
	if bps == 0 {
		t.Fatal("saturated frontend produced no backpressure frames")
	}
	if oks == 0 {
		t.Fatal("no submission was admitted at all")
	}
	t.Logf("admitted %d, pushed back %d", oks, bps)
}

// TestServerHandshakeRejections covers the coded GoAway paths: a client
// speaking only a future protocol version, and a client whose first frame
// is not Hello.
func TestServerHandshakeRejections(t *testing.T) {
	_, _, addr := launchServer(t, ServerConfig{}, time.Millisecond)

	c := dialRaw(t, addr)
	c.write(Header{Type: FrameHello}, AppendHello(nil, V1+1, V1+7))
	if h, _ := c.read(); h.Type != FrameGoAway || h.Code != CodeBadVersion {
		t.Fatalf("version mismatch answered %s code %s", FrameName(h.Type), CodeName(h.Code))
	}

	c2 := dialRaw(t, addr)
	c2.write(Header{Type: FramePing}, nil)
	if h, _ := c2.read(); h.Type != FrameGoAway || h.Code != CodeBadFrame {
		t.Fatalf("bad first frame answered %s code %s", FrameName(h.Type), CodeName(h.Code))
	}
}

// TestServerSubmitRejections covers per-request failure frames that must
// not poison the rest of the pipeline: unknown proc ids and undecodable
// payloads each get their own coded Result, after which a valid submit on
// the same connection still commits.
func TestServerSubmitRejections(t *testing.T) {
	_, _, addr := launchServer(t, ServerConfig{}, time.Millisecond)
	c := dialRaw(t, addr)
	c.handshake()

	c.write(Header{Type: FrameSubmit, ReqID: 1}, AppendSubmit(nil, 9999, proc.Args{}))
	if h, _ := c.read(); h.Type != FrameResult || h.Code != CodeUnknownProc {
		t.Fatalf("unknown proc answered %s code %s", FrameName(h.Type), CodeName(h.Code))
	}

	c.write(Header{Type: FrameSubmit, ReqID: 2}, []byte{0xff, 0xff})
	if h, _ := c.read(); h.Type != FrameResult || h.Code != CodeBadFrame {
		t.Fatalf("garbage submit answered %s code %s", FrameName(h.Type), CodeName(h.Code))
	}

	c.deposit(3, 1, 5)
	if h, _ := c.read(); h.Type != FrameResult || h.Code != CodeOK || h.ReqID != 3 {
		t.Fatalf("follow-up submit answered %s code %s req %d", FrameName(h.Type), CodeName(h.Code), h.ReqID)
	}
}

// TestServerDrainDuringLoad admits a batch of submissions whose durable
// futures are still pending (long epoch), then drains, and checks the
// wire-visible contract: every admitted request settles with a result, the
// connection sees GoAway CodeDraining, and the listener stops accepting.
func TestServerDrainDuringLoad(t *testing.T) {
	_, srv, addr := launchServer(t, ServerConfig{Workers: 2, Queue: 64, Window: 64}, 100*time.Millisecond)
	c := dialRaw(t, addr)
	c.handshake()

	const n = 16
	for i := uint64(0); i < n; i++ {
		c.deposit(i, int64(i%8), 2)
	}
	// The read loop is serial, so a Pong proves every submit above has been
	// read and admitted — the futures are in flight, the receive buffer is
	// empty, and Drain below races only with epoch release, as intended.
	c.write(Header{Type: FramePing, ReqID: 999}, nil)
	results := 0
	for {
		h, _ := c.read()
		if h.Type == FramePong {
			break
		}
		if h.Type != FrameResult || h.Code != CodeOK {
			t.Fatalf("pre-drain frame %s code %s", FrameName(h.Type), CodeName(h.Code))
		}
		results++ // epoch released early on a slow machine; still counts
	}
	done := make(chan struct{})
	go func() { srv.Drain(5 * time.Second); close(done) }()

	// Read until the server flushes and severs: every admitted request must
	// settle with a result frame before the FIN, and the drain must have
	// been announced.
	var goaways int
	for {
		h, _, err := ReadFrame(c.nc, nil)
		if err != nil {
			break
		}
		switch h.Type {
		case FrameResult:
			if h.Code != CodeOK {
				t.Fatalf("in-flight request settled %s", CodeName(h.Code))
			}
			results++
		case FrameGoAway:
			if h.Code != CodeDraining {
				t.Fatalf("goaway code %s", CodeName(h.Code))
			}
			goaways++
		default:
			t.Fatalf("unexpected %s during drain", FrameName(h.Type))
		}
	}
	<-done
	if results != n {
		t.Fatalf("drain settled %d/%d admitted requests", results, n)
	}
	if goaways == 0 {
		t.Error("drain never announced GoAway")
	}
	// A fresh connection is refused with CodeDraining, not a silent RST.
	if nc, err := net.Dial(addr.Network(), addr.String()); err == nil {
		nc.Close()
		t.Fatal("listener still accepting after drain")
	}
}
