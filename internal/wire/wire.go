// Package wire is pacmand's wire protocol: a compact length-prefixed
// binary frame format for submitting stored-procedure invocations to a
// pacman instance over TCP or unix sockets, plus the server that speaks it
// (see Server).
//
// The protocol is spec-first: docs/PROTOCOL.md is the normative reference
// for the frame layout, version negotiation, status codes, and the
// pipelining/backpressure semantics, and TestDocsProtocolDrift fails the
// build when the constants below diverge from the tables in that document.
//
// The shape in one paragraph: every frame is a fixed 16-byte header
// (type, flags, status code, payload length, request id) followed by a
// payload. A connection opens with Hello/HelloAck version negotiation; the
// ack carries the server's procedure table (names in procedure-ID order)
// and the per-connection in-flight window. After that the client pipelines
// Submit frames — many in flight, each tagged with a client-chosen request
// id — and the server answers with Result frames in WHATEVER ORDER the
// durable-commit futures resolve, echoing the request id. A full admission
// queue surfaces as a Backpressure frame (the request was never executed;
// the client retries), and a draining server announces GoAway and rejects
// new work with CodeDraining instead of dropping the connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"pacman/internal/frontend"
	"pacman/internal/proc"
	"pacman/internal/txn"
	"pacman/internal/wal"
)

// Protocol constants. docs/PROTOCOL.md is the normative spec; the doc-drift
// test asserts these values match its tables.
const (
	// Magic opens every Hello payload: "PAC1" little-endian.
	Magic uint32 = 0x31434150
	// V1 is the only protocol version so far.
	V1 uint16 = 1
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 16
	// MaxPayload bounds a frame payload; larger length prefixes are a
	// protocol error (and protect the reader from hostile allocations).
	MaxPayload = 1 << 20
	// DefaultWindow is the per-connection in-flight grant servers hand out
	// when the config does not override it.
	DefaultWindow = 64
)

// Frame types.
const (
	FrameHello        uint8 = 1 // client → server: magic + supported version range
	FrameHelloAck     uint8 = 2 // server → client: chosen version, window, proc table
	FrameSubmit       uint8 = 3 // client → server: proc id + encoded args
	FrameResult       uint8 = 4 // server → client: status code (+ TS or message)
	FrameBackpressure uint8 = 5 // server → client: admission queue full, retry
	FrameGoAway       uint8 = 6 // server → client: draining, stop submitting
	FramePing         uint8 = 7 // either direction: liveness probe
	FramePong         uint8 = 8 // answer to Ping, request id echoed
	// FramePrepare and FrameDecide carry the two phases of a cross-shard
	// commit from a shard router to a participant shard. Both share the
	// Submit payload layout (proc id + encoded args) and are answered with
	// Result frames; the participant executes them as distributed
	// transactions (value logging even under command logging). A Prepare's
	// CodeOK Result means the piece's effects are durable at the
	// participant's pepoch — the coordinator's commit decision may only
	// follow those acks (see docs/ARCHITECTURE.md).
	FramePrepare uint8 = 9  // router → shard: durable prepare piece
	FrameDecide  uint8 = 10 // router → shard: commit-apply or abort-release piece
)

// Flags.
const (
	// FlagAdHoc marks a Submit as an ad-hoc transaction (tuple-level
	// logging even under command logging).
	FlagAdHoc uint8 = 1 << 0
	// FlagDeadline marks a Submit/Prepare/Decide payload as carrying a
	// per-request timeout: 8 extra bytes (relative nanoseconds, LE)
	// between the procedure id and the arguments. The timeout is relative
	// so clock skew between client and server cannot expire a request in
	// transit; the server anchors it to its own clock on receipt.
	FlagDeadline uint8 = 1 << 1
)

// Status codes carried in Result (and Backpressure/GoAway) frames.
const (
	CodeOK           uint16 = 0  // executed and durable; payload is the commit TS
	CodeUnknownProc  uint16 = 1  // proc id outside the server's table; never executed
	CodeAborted      uint16 = 2  // procedure aborted (rolled back); no effects
	CodeCrashed      uint16 = 3  // executed, crash beat durability; outcome after recovery unknown
	CodeClosed       uint16 = 4  // executed, instance closed before release
	CodeRejected     uint16 = 5  // frontend closed before execution; never executed
	CodeBackpressure uint16 = 6  // admission queue full; never executed, retry
	CodeDraining     uint16 = 7  // server draining; never executed, reconnect
	CodeBadVersion   uint16 = 8  // no version overlap in Hello
	CodeBadFrame     uint16 = 9  // malformed frame or handshake violation
	CodeInternal     uint16 = 10 // unexpected server-side failure
	// CodeDeadlineExceeded: the request's deadline passed before its commit
	// became durable. Execution state is unknown — the request may have been
	// shed before execution, or executed with durability still in flight.
	CodeDeadlineExceeded uint16 = 11
)

// frameNames and codeNames drive String rendering AND the doc-drift test:
// every entry must appear, with the same value, in docs/PROTOCOL.md.
var frameNames = map[uint8]string{
	FrameHello:        "FrameHello",
	FrameHelloAck:     "FrameHelloAck",
	FrameSubmit:       "FrameSubmit",
	FrameResult:       "FrameResult",
	FrameBackpressure: "FrameBackpressure",
	FrameGoAway:       "FrameGoAway",
	FramePing:         "FramePing",
	FramePong:         "FramePong",
	FramePrepare:      "FramePrepare",
	FrameDecide:       "FrameDecide",
}

var codeNames = map[uint16]string{
	CodeOK:           "CodeOK",
	CodeUnknownProc:  "CodeUnknownProc",
	CodeAborted:      "CodeAborted",
	CodeCrashed:      "CodeCrashed",
	CodeClosed:       "CodeClosed",
	CodeRejected:     "CodeRejected",
	CodeBackpressure: "CodeBackpressure",
	CodeDraining:     "CodeDraining",
	CodeBadVersion:   "CodeBadVersion",
	CodeBadFrame:     "CodeBadFrame",
	CodeInternal:     "CodeInternal",

	CodeDeadlineExceeded: "CodeDeadlineExceeded",
}

// FrameName renders a frame type for diagnostics.
func FrameName(t uint8) string {
	if n, ok := frameNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Frame(%d)", t)
}

// CodeName renders a status code for diagnostics.
func CodeName(c uint16) string {
	if n, ok := codeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Code(%d)", c)
}

// Codec errors.
var (
	// ErrTruncated means a payload ended before its encoding did.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrFrameTooLarge means a header announced a payload above MaxPayload.
	ErrFrameTooLarge = errors.New("wire: frame payload exceeds MaxPayload")
	// ErrBadMagic means a Hello payload did not open with Magic.
	ErrBadMagic = errors.New("wire: bad magic in hello")
	// ErrVersionMismatch means version negotiation found no overlap.
	ErrVersionMismatch = errors.New("wire: no protocol version overlap")
	// ErrBadFrame means a frame type was invalid in the connection's state.
	ErrBadFrame = errors.New("wire: unexpected frame")
)

// Header is the fixed 16-byte prefix of every frame. All integers on the
// wire are little-endian, matching the engine's log codecs.
type Header struct {
	Type  uint8  // frame type (Frame*)
	Flags uint8  // frame flags (Flag*)
	Code  uint16 // status code (Code*); zero outside result-bearing frames
	Len   uint32 // payload length, set by WriteFrame
	ReqID uint64 // request id chosen by the submitter, echoed in responses
}

// AppendHeader appends h to buf (h.Len must already be set).
func AppendHeader(buf []byte, h Header) []byte {
	buf = append(buf, h.Type, h.Flags)
	buf = binary.LittleEndian.AppendUint16(buf, h.Code)
	buf = binary.LittleEndian.AppendUint32(buf, h.Len)
	buf = binary.LittleEndian.AppendUint64(buf, h.ReqID)
	return buf
}

// ParseHeader decodes one header from the first HeaderSize bytes of b.
func ParseHeader(b []byte) Header {
	return Header{
		Type:  b[0],
		Flags: b[1],
		Code:  binary.LittleEndian.Uint16(b[2:4]),
		Len:   binary.LittleEndian.Uint32(b[4:8]),
		ReqID: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// WriteFrame writes one frame (header + payload) to w, setting h.Len from
// the payload. It refuses payloads above MaxPayload.
func WriteFrame(w io.Writer, h Header, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooLarge
	}
	h.Len = uint32(len(payload))
	buf := make([]byte, 0, HeaderSize+len(payload))
	buf = AppendHeader(buf, h)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, reusing buf for the payload when it is
// large enough. It returns the header and the payload (aliasing buf's
// backing array when reused — consume it before the next ReadFrame).
func ReadFrame(r io.Reader, buf []byte) (Header, []byte, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return Header{}, nil, err
	}
	h := ParseHeader(hb[:])
	if h.Len > MaxPayload {
		return h, nil, fmt.Errorf("%w: %d bytes in %s", ErrFrameTooLarge, h.Len, FrameName(h.Type))
	}
	if int(h.Len) > cap(buf) {
		buf = make([]byte, h.Len)
	}
	buf = buf[:h.Len]
	if _, err := io.ReadFull(r, buf); err != nil {
		return h, nil, err
	}
	return h, buf, nil
}

// AppendHello appends a Hello payload: magic + supported version range.
func AppendHello(buf []byte, minVer, maxVer uint16) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, minVer)
	buf = binary.LittleEndian.AppendUint16(buf, maxVer)
	return buf
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (minVer, maxVer uint16, err error) {
	if len(p) < 8 {
		return 0, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(p) != Magic {
		return 0, 0, ErrBadMagic
	}
	minVer = binary.LittleEndian.Uint16(p[4:6])
	maxVer = binary.LittleEndian.Uint16(p[6:8])
	if minVer > maxVer {
		return 0, 0, fmt.Errorf("%w: min %d > max %d", ErrBadFrame, minVer, maxVer)
	}
	return minVer, maxVer, nil
}

// NegotiateVersion picks the highest mutually supported version, or
// ErrVersionMismatch. The server currently speaks only V1.
func NegotiateVersion(minVer, maxVer uint16) (uint16, error) {
	if minVer <= V1 && V1 <= maxVer {
		return V1, nil
	}
	return 0, fmt.Errorf("%w: client offers [%d,%d], server speaks %d", ErrVersionMismatch, minVer, maxVer, V1)
}

// AppendHelloAck appends a HelloAck payload: the negotiated version, the
// per-connection in-flight window grant, and the procedure table — names in
// procedure-ID order, so Submit frames can carry a 4-byte id instead of a
// name.
func AppendHelloAck(buf []byte, version uint16, window uint32, procs []string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, window)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(procs)))
	for _, name := range procs {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	return buf
}

// ParseHelloAck decodes a HelloAck payload.
func ParseHelloAck(p []byte) (version uint16, window uint32, procs []string, err error) {
	if len(p) < 8 {
		return 0, 0, nil, ErrTruncated
	}
	version = binary.LittleEndian.Uint16(p)
	window = binary.LittleEndian.Uint32(p[2:6])
	n := int(binary.LittleEndian.Uint16(p[6:8]))
	off := 8
	procs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(p[off:]) < 2 {
			return 0, 0, nil, ErrTruncated
		}
		l := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if len(p[off:]) < l {
			return 0, 0, nil, ErrTruncated
		}
		procs = append(procs, string(p[off:off+l]))
		off += l
	}
	return version, window, procs, nil
}

// AppendSubmit appends a Submit payload: the procedure id followed by the
// invocation arguments in the engine's own argument codec (the exact bytes
// a command-log entry carries).
func AppendSubmit(buf []byte, procID uint32, args proc.Args) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, procID)
	return proc.AppendArgs(buf, args)
}

// AppendSubmitDeadline appends a Submit payload carrying a per-request
// timeout: procedure id, then the relative timeout in nanoseconds, then the
// arguments. The frame's header must set FlagDeadline so the receiver knows
// the extra field is present.
func AppendSubmitDeadline(buf []byte, procID uint32, timeout time.Duration, args proc.Args) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, procID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(timeout))
	return proc.AppendArgs(buf, args)
}

// ParseSubmit decodes a Submit payload under the frame's flags. When
// FlagDeadline is set the payload carries a relative timeout (nanoseconds)
// between the procedure id and the arguments; timeout is zero otherwise.
func ParseSubmit(p []byte, flags uint8) (procID uint32, timeout time.Duration, args proc.Args, err error) {
	if len(p) < 4 {
		return 0, 0, nil, ErrTruncated
	}
	procID = binary.LittleEndian.Uint32(p)
	off := 4
	if flags&FlagDeadline != 0 {
		if len(p) < off+8 {
			return 0, 0, nil, ErrTruncated
		}
		timeout = time.Duration(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	args, n, err := proc.DecodeArgs(p[off:])
	if err != nil {
		return 0, 0, nil, fmt.Errorf("wire: submit args: %w", err)
	}
	if off+n != len(p) {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes after args", ErrBadFrame, len(p)-off-n)
	}
	return procID, timeout, args, nil
}

// AppendResultOK appends the payload of a CodeOK Result: the commit TS.
func AppendResultOK(buf []byte, ts uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, ts)
}

// AppendResultErr appends the payload of a non-OK Result: a short message.
func AppendResultErr(buf []byte, msg string) []byte {
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	return append(buf, msg...)
}

// ParseResult decodes a Result payload according to its status code: the
// commit TS for CodeOK, a diagnostic message otherwise.
func ParseResult(code uint16, p []byte) (ts uint64, msg string, err error) {
	if code == CodeOK {
		if len(p) < 8 {
			return 0, "", ErrTruncated
		}
		return binary.LittleEndian.Uint64(p), "", nil
	}
	if len(p) == 0 {
		return 0, "", nil // message is optional
	}
	if len(p) < 2 {
		return 0, "", ErrTruncated
	}
	l := int(binary.LittleEndian.Uint16(p))
	if len(p[2:]) < l {
		return 0, "", ErrTruncated
	}
	return 0, string(p[2 : 2+l]), nil
}

// AppendBackpressure appends a Backpressure payload: the admission queue's
// depth and capacity at rejection time, so clients can pace adaptively.
func AppendBackpressure(buf []byte, depth, capacity uint32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, depth)
	return binary.LittleEndian.AppendUint32(buf, capacity)
}

// ParseBackpressure decodes a Backpressure payload.
func ParseBackpressure(p []byte) (depth, capacity uint32, err error) {
	if len(p) < 8 {
		return 0, 0, ErrTruncated
	}
	return binary.LittleEndian.Uint32(p), binary.LittleEndian.Uint32(p[4:8]), nil
}

// StatusError is the client-side rendering of a non-OK Result. It unwraps
// to the engine sentinel matching its code, so errors.Is classification
// (ErrCrashed vs ErrAborted vs rejected-before-execution) works across the
// network exactly as it does in-process.
type StatusError struct {
	Code uint16
	Msg  string
	// Attempts is how many times the client tried this call before giving
	// up (zero when the first attempt produced the result). Retries happen
	// on Backpressure/Draining sheds; the count makes "the server shed me
	// N times" diagnosable from the error alone.
	Attempts int
}

// Error renders the code name, the server's message, and the retry count.
func (e *StatusError) Error() string {
	s := fmt.Sprintf("wire: %s", CodeName(e.Code))
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Attempts > 0 {
		s += fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	return s
}

// Sentinels for codes with no in-process equivalent.
var (
	// ErrUnknownProc means the submitted proc id is outside the server's
	// procedure table.
	ErrUnknownProc = errors.New("wire: unknown procedure")
	// ErrDraining means the server rejected the submission because it is
	// draining; the request was never executed.
	ErrDraining = errors.New("wire: server draining")
	// ErrBackpressure means the server shed the request at admission (full
	// queue or brownout) and the client's retry budget ran out; the request
	// was never executed.
	ErrBackpressure = errors.New("wire: backpressure, retry budget exhausted")
)

// Unwrap maps the status code onto the matching engine sentinel so that
// errors.Is(err, pacman.ErrCrashed) (and friends) hold over the network.
func (e *StatusError) Unwrap() error {
	switch e.Code {
	case CodeUnknownProc:
		return ErrUnknownProc
	case CodeAborted:
		return proc.ErrAborted
	case CodeCrashed:
		return wal.ErrCrashed
	case CodeClosed:
		return wal.ErrClosed
	case CodeRejected:
		return frontend.ErrClosed
	case CodeBackpressure:
		return ErrBackpressure
	case CodeDraining:
		return ErrDraining
	case CodeBadVersion:
		return ErrVersionMismatch
	case CodeBadFrame:
		return ErrBadFrame
	case CodeDeadlineExceeded:
		return txn.ErrDeadlineExceeded
	}
	return nil
}

// CodeError builds the error a client resolves a future with for a non-OK
// Result (nil for CodeOK).
func CodeError(code uint16, msg string) error {
	if code == CodeOK {
		return nil
	}
	return &StatusError{Code: code, Msg: msg}
}

// ErrorCode classifies a future's terminal error into the status code a
// Result frame carries back (the server-side inverse of CodeError).
func ErrorCode(err error) (uint16, string) {
	switch {
	case err == nil:
		return CodeOK, ""
	case errors.Is(err, proc.ErrAborted):
		return CodeAborted, err.Error()
	case errors.Is(err, wal.ErrCrashed):
		return CodeCrashed, err.Error()
	case errors.Is(err, wal.ErrClosed):
		return CodeClosed, err.Error()
	case errors.Is(err, txn.ErrDeadlineExceeded):
		return CodeDeadlineExceeded, err.Error()
	case errors.Is(err, frontend.ErrBrownout):
		return CodeBackpressure, err.Error()
	case errors.Is(err, ErrBackpressure):
		// Never-executed sheds that originated behind another wire hop (a
		// router's open circuit breaker wraps ErrBackpressure): keep the
		// retry-safe classification across the hop instead of collapsing to
		// CodeInternal's "maybe".
		return CodeBackpressure, err.Error()
	case errors.Is(err, frontend.ErrClosed):
		return CodeRejected, err.Error()
	default:
		return CodeInternal, err.Error()
	}
}
