package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"pacman/internal/frontend"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/wal"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Type: FrameSubmit, Flags: FlagAdHoc, Code: CodeAborted, Len: 12345, ReqID: 0xdeadbeefcafe}
	buf := AppendHeader(nil, h)
	if len(buf) != HeaderSize {
		t.Fatalf("header size %d, want %d", len(buf), HeaderSize)
	}
	if got := ParseHeader(buf); got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestHelloCodec(t *testing.T) {
	p := AppendHello(nil, 1, 3)
	minV, maxV, err := ParseHello(p)
	if err != nil || minV != 1 || maxV != 3 {
		t.Fatalf("round trip: %d %d %v", minV, maxV, err)
	}

	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated", AppendHello(nil, 1, 1)[:5], ErrTruncated},
		{"bad magic", append([]byte{0, 0, 0, 0}, AppendHello(nil, 1, 1)[4:]...), ErrBadMagic},
		{"inverted range", AppendHello(nil, 3, 1), ErrBadFrame},
		{"garbage", []byte("\x00\x01\x02\x03\x04\x05\x06\x07"), ErrBadMagic},
	}
	for _, tc := range cases {
		if _, _, err := ParseHello(tc.p); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestHelloAckCodec(t *testing.T) {
	procs := []string{"Transfer", "Deposit", "TortureStamp"}
	p := AppendHelloAck(nil, V1, 64, procs)
	ver, win, got, err := ParseHelloAck(p)
	if err != nil || ver != V1 || win != 64 {
		t.Fatalf("round trip: %d %d %v", ver, win, err)
	}
	if len(got) != len(procs) || got[0] != "Transfer" || got[2] != "TortureStamp" {
		t.Fatalf("procs: %v", got)
	}
	// Every strict prefix must fail cleanly, never panic or fabricate.
	for cut := 0; cut < len(p); cut++ {
		if _, _, _, err := ParseHelloAck(p[:cut]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(p))
		}
	}
}

func TestSubmitCodec(t *testing.T) {
	args := proc.Args{proc.A(tuple.I(42)), proc.A(tuple.F(3.5)), proc.A(tuple.S("x"))}
	p := AppendSubmit(nil, 7, args)
	id, timeout, got, err := ParseSubmit(p, 0)
	if err != nil || id != 7 || timeout != 0 {
		t.Fatalf("round trip: id %d timeout %v err %v", id, timeout, err)
	}
	if len(got) != 3 || got[0][0].Int() != 42 || got[2][0].Str() != "x" {
		t.Fatalf("args: %v", got)
	}

	cases := []struct {
		name string
		p    []byte
	}{
		{"empty", nil},
		{"only proc id", p[:4]},
		{"truncated args", p[:len(p)-1]},
		{"trailing garbage", append(append([]byte(nil), p...), 0xff)},
		{"garbage args", append(append([]byte(nil), p[:4]...), 0xff, 0xff, 0xff)},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseSubmit(tc.p, 0); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestSubmitDeadlineCodec(t *testing.T) {
	args := proc.Args{proc.A(tuple.I(42))}
	p := AppendSubmitDeadline(nil, 7, 250*time.Millisecond, args)
	id, timeout, got, err := ParseSubmit(p, FlagDeadline)
	if err != nil || id != 7 || timeout != 250*time.Millisecond {
		t.Fatalf("round trip: id %d timeout %v err %v", id, timeout, err)
	}
	if len(got) != 1 || got[0][0].Int() != 42 {
		t.Fatalf("args: %v", got)
	}
	// Without the flag, the 8 timeout bytes must NOT silently reparse as
	// arguments or trailing garbage must be caught.
	if _, _, _, err := ParseSubmit(p, 0); err == nil {
		t.Fatalf("deadline payload without FlagDeadline decoded without error")
	}
	// Every strict prefix must fail cleanly under the flag.
	for cut := 0; cut < len(p); cut++ {
		if _, _, _, err := ParseSubmit(p[:cut], FlagDeadline); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded without error", cut, len(p))
		}
	}
}

func TestResultCodec(t *testing.T) {
	ts, msg, err := ParseResult(CodeOK, AppendResultOK(nil, 0x123456789))
	if err != nil || ts != 0x123456789 || msg != "" {
		t.Fatalf("ok result: %x %q %v", ts, msg, err)
	}
	if _, _, err := ParseResult(CodeOK, []byte{1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short ok result: %v", err)
	}
	_, msg, err = ParseResult(CodeAborted, AppendResultErr(nil, "boom"))
	if err != nil || msg != "boom" {
		t.Fatalf("err result: %q %v", msg, err)
	}
	if _, msg, err := ParseResult(CodeInternal, nil); err != nil || msg != "" {
		t.Fatalf("empty message must be legal: %q %v", msg, err)
	}
	if _, _, err := ParseResult(CodeInternal, []byte{9, 0, 'x'}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated message: %v", err)
	}
}

func TestBackpressureCodec(t *testing.T) {
	d, c, err := ParseBackpressure(AppendBackpressure(nil, 15, 16))
	if err != nil || d != 15 || c != 16 {
		t.Fatalf("round trip: %d/%d %v", d, c, err)
	}
	if _, _, err := ParseBackpressure([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized length prefix is rejected before any allocation.
	h := Header{Type: FrameSubmit, Len: MaxPayload + 1}
	var buf bytes.Buffer
	buf.Write(AppendHeader(nil, h))
	if _, _, err := ReadFrame(&buf, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized: %v", err)
	}

	// A stream that ends mid-payload reports unexpected EOF, not garbage.
	buf.Reset()
	if err := WriteFrame(&buf, Header{Type: FrameResult}, AppendResultOK(nil, 1)); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-3])
	if _, _, err := ReadFrame(trunc, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream: %v", err)
	}

	// WriteFrame refuses oversized payloads symmetrically.
	if err := WriteFrame(io.Discard, Header{}, make([]byte, MaxPayload+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestWriteReadFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendSubmit(nil, 3, proc.Args{proc.A(tuple.I(1))})
	if err := WriteFrame(&buf, Header{Type: FrameSubmit, ReqID: 99}, payload); err != nil {
		t.Fatal(err)
	}
	h, p, err := ReadFrame(&buf, make([]byte, 4)) // undersized reuse buffer grows
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != FrameSubmit || h.ReqID != 99 || int(h.Len) != len(payload) {
		t.Fatalf("header: %+v", h)
	}
	if !bytes.Equal(p, payload) {
		t.Fatalf("payload mismatch")
	}
}

func TestNegotiateVersion(t *testing.T) {
	if v, err := NegotiateVersion(1, 5); err != nil || v != V1 {
		t.Fatalf("overlap: %d %v", v, err)
	}
	if _, err := NegotiateVersion(2, 9); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future-only client: %v", err)
	}
}

// TestStatusErrorMapping pins the contract that makes network outcome
// classification transport-agnostic: server-side ErrorCode and client-side
// CodeError are inverses through the engine sentinels.
func TestStatusErrorMapping(t *testing.T) {
	cases := []struct {
		in       error
		code     uint16
		sentinel error
	}{
		{proc.ErrAborted, CodeAborted, proc.ErrAborted},
		{wal.ErrCrashed, CodeCrashed, wal.ErrCrashed},
		{wal.ErrClosed, CodeClosed, wal.ErrClosed},
		{frontend.ErrClosed, CodeRejected, frontend.ErrClosed},
		{errors.New("surprise"), CodeInternal, nil},
	}
	for _, tc := range cases {
		code, msg := ErrorCode(tc.in)
		if code != tc.code {
			t.Errorf("ErrorCode(%v) = %s, want %s", tc.in, CodeName(code), CodeName(tc.code))
		}
		back := CodeError(code, msg)
		if tc.sentinel != nil && !errors.Is(back, tc.sentinel) {
			t.Errorf("CodeError(%s) does not unwrap to %v", CodeName(code), tc.sentinel)
		}
	}
	if CodeError(CodeOK, "") != nil {
		t.Error("CodeError(CodeOK) must be nil")
	}
	if !errors.Is(CodeError(CodeDraining, ""), ErrDraining) {
		t.Error("CodeDraining must unwrap to ErrDraining")
	}
	if !strings.Contains(CodeError(CodeBackpressure, "q full").Error(), "CodeBackpressure") {
		t.Error("StatusError must render its code name")
	}
}
