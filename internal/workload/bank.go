// Package workload defines the benchmark applications the evaluation runs:
// the paper's running bank example (Figures 2-5), TPC-C (Section 6 and
// Appendix C), and Smallbank. Each workload provides its catalog schema, its
// stored procedures in the proc IR, a deterministic population step, and a
// transaction-mix generator.
package workload

import (
	"math/rand"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// Txn is one generated transaction request: a procedure and its arguments.
type Txn struct {
	Proc *proc.Compiled
	Args proc.Args
	// AdHoc marks the transaction as issued outside stored procedures; the
	// DBMS must then fall back to tuple-level logical logging (Section 4.5).
	AdHoc bool
	// ReadOnly marks transactions that generate no log records.
	ReadOnly bool
	// MayAbort marks transactions expected to roll back (e.g., TPC-C's 1%
	// invalid-item NewOrders); the harness does not treat their abort as an
	// error.
	MayAbort bool
}

// Workload is the interface the harness drives.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// DB returns the catalog the workload was built against.
	DB() *engine.Database
	// Registry returns the workload's compiled procedures.
	Registry() *proc.Registry
	// Populate installs the initial database state. It must be
	// deterministic: recovery rebuilds the pre-crash initial state by
	// calling it again on a fresh catalog when no checkpoint is available.
	Populate(exec PopulateExec)
	// Generate returns the next transaction of the mix.
	Generate(rng *rand.Rand) Txn
}

// PopulateExec installs initial rows. Implementations decide the timestamp
// and versioning policy.
type PopulateExec interface {
	Seed(t *engine.Table, key uint64, vals tuple.Tuple)
}

// DirectPopulate is the standard PopulateExec: rows installed at the
// initial timestamp (epoch 0), multi-version retained.
type DirectPopulate struct{}

// Seed installs one row at the population timestamp.
func (DirectPopulate) Seed(t *engine.Table, key uint64, vals tuple.Tuple) {
	r, _ := t.GetOrCreateRow(key)
	r.Install(engine.MakeTS(0, 1), vals, false, true)
}

// Bank is the paper's running example: Transfer (Figure 2) and Deposit
// (Figure 4) over Family, Current, Saving, and Stats tables. Static
// analysis of this workload must yield exactly the paper's Figure 5.
type Bank struct {
	db  *engine.Database
	reg *proc.Registry

	// Transfer and Deposit are the two compiled procedures.
	Transfer *proc.Compiled
	Deposit  *proc.Compiled

	// Accounts is the number of bank customers.
	Accounts int
	// Nations is the key space of the Stats table.
	Nations int
}

// NewBank builds the bank catalog and compiles its procedures.
func NewBank(accounts int) *Bank {
	if accounts <= 0 {
		accounts = 1000
	}
	b := &Bank{
		db:       engine.NewDatabase(),
		reg:      proc.NewRegistry(),
		Accounts: accounts,
		Nations:  50,
	}
	b.db.MustAddTable(tuple.MustSchema("Family",
		tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)))
	b.db.MustAddTable(tuple.MustSchema("Current",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	b.db.MustAddTable(tuple.MustSchema("Saving",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	b.db.MustAddTable(tuple.MustSchema("Stats",
		tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)))
	b.Transfer = b.reg.MustRegister(b.db, BankTransferProc())
	b.Deposit = b.reg.MustRegister(b.db, BankDepositProc())
	return b
}

// BankTransferProc is Figure 2's Transfer. Account IDs start at 1; a spouse
// value of 0 encodes the paper's "NULL".
func BankTransferProc() *proc.Procedure {
	return &proc.Procedure{
		Name:   "Transfer",
		Params: []proc.ParamDef{proc.P("src"), proc.P("amount")},
		Body: []proc.Stmt{
			proc.Read("dst", "Family", proc.Pm("src"), "Spouse"),
			proc.If(proc.Ne(proc.V("dst"), proc.CI(0)),
				proc.Read("srcVal", "Current", proc.Pm("src"), "Value"),
				proc.Write("Current", proc.Pm("src"),
					proc.Set("Value", proc.Sub(proc.V("srcVal"), proc.Pm("amount")))),
				proc.Read("dstVal", "Current", proc.V("dst"), "Value"),
				proc.Write("Current", proc.V("dst"),
					proc.Set("Value", proc.Add(proc.V("dstVal"), proc.Pm("amount")))),
				proc.Read("bonus", "Saving", proc.Pm("src"), "Value"),
				proc.Write("Saving", proc.Pm("src"),
					proc.Set("Value", proc.Add(proc.V("bonus"), proc.CI(1)))),
			),
		},
	}
}

// BankDepositProc is Figure 4's Deposit.
func BankDepositProc() *proc.Procedure {
	big := func() proc.Expr {
		return proc.Gt(proc.Add(proc.V("tmp"), proc.Pm("amount")), proc.CI(10000))
	}
	return &proc.Procedure{
		Name:   "Deposit",
		Params: []proc.ParamDef{proc.P("name"), proc.P("amount"), proc.P("nation")},
		Body: []proc.Stmt{
			proc.Read("tmp", "Current", proc.Pm("name"), "Value"),
			proc.Write("Current", proc.Pm("name"),
				proc.Set("Value", proc.Add(proc.V("tmp"), proc.Pm("amount")))),
			proc.If(big(),
				proc.Read("bonus", "Saving", proc.Pm("name"), "Value"),
				proc.Write("Saving", proc.Pm("name"),
					proc.Set("Value", proc.Add(proc.V("bonus"), proc.CI(1)))),
			),
			proc.If(big(),
				proc.Read("count", "Stats", proc.Pm("nation"), "Count"),
				proc.Write("Stats", proc.Pm("nation"),
					proc.Set("Count", proc.Add(proc.V("count"), proc.CI(1)))),
			),
		},
	}
}

// Name implements Workload.
func (b *Bank) Name() string { return "bank" }

// DB implements Workload.
func (b *Bank) DB() *engine.Database { return b.db }

// Registry implements Workload.
func (b *Bank) Registry() *proc.Registry { return b.reg }

// Populate creates Accounts customers: odd customer i is married to i+1,
// balances start at 10*i current / 100 saving, and all nation counters at 0.
func (b *Bank) Populate(exec PopulateExec) {
	family := b.db.Table("Family")
	current := b.db.Table("Current")
	saving := b.db.Table("Saving")
	stats := b.db.Table("Stats")
	for i := 1; i <= b.Accounts; i++ {
		spouse := int64(0)
		if i%2 == 1 && i+1 <= b.Accounts {
			spouse = int64(i + 1)
		} else if i%2 == 0 {
			spouse = int64(i - 1)
		}
		exec.Seed(family, uint64(i), tuple.Tuple{tuple.I(int64(i)), tuple.I(spouse)})
		exec.Seed(current, uint64(i), tuple.Tuple{tuple.I(int64(i)), tuple.I(int64(10 * i))})
		exec.Seed(saving, uint64(i), tuple.Tuple{tuple.I(int64(i)), tuple.I(100)})
	}
	for n := 1; n <= b.Nations; n++ {
		exec.Seed(stats, uint64(n), tuple.Tuple{tuple.I(int64(n)), tuple.I(0)})
	}
}

// Generate returns a 50/50 Transfer/Deposit mix.
func (b *Bank) Generate(rng *rand.Rand) Txn {
	acct := tuple.I(int64(1 + rng.Intn(b.Accounts)))
	if rng.Intn(2) == 0 {
		return Txn{
			Proc: b.Transfer,
			Args: proc.Args{proc.A(acct), proc.A(tuple.I(int64(1 + rng.Intn(100))))},
		}
	}
	return Txn{
		Proc: b.Deposit,
		Args: proc.Args{
			proc.A(acct),
			proc.A(tuple.I(int64(1 + rng.Intn(5000)))),
			proc.A(tuple.I(int64(1 + rng.Intn(b.Nations)))),
		},
	}
}
