package workload

import (
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// BlueprintSpec is a workload's catalog in declarative form: schemas in
// table-ID order, procedure sources in registration order, and a seed that
// installs the initial population by table name. Its fields plug directly
// into the public pacman.Blueprint (whose field types are aliases of
// these), so examples and services launch any benchmark with
//
//	spec := workload.Spec(w)
//	db, err := pacman.Launch(pacman.Blueprint{
//	        Tables:     spec.Tables,
//	        Procedures: spec.Procs,
//	        Seed:       spec.Seed,
//	}, opts)
type BlueprintSpec struct {
	Tables []*tuple.Schema
	Procs  []*proc.Procedure
	Seed   func(seed func(table string, key uint64, vals tuple.Tuple))
}

// Spec extracts the blueprint of any Workload. The schemas and procedure
// sources come from the workload's own catalog and registry in their
// original declaration/registration order, and the seed routes the
// workload's deterministic Populate through table names, so the spec can
// populate a different instance than the one the workload was built
// against (as Restart does).
func Spec(w Workload) BlueprintSpec {
	var tables []*tuple.Schema
	for _, t := range w.DB().Tables() {
		tables = append(tables, t.Schema())
	}
	var procs []*proc.Procedure
	for _, c := range w.Registry().All() {
		procs = append(procs, c.Source())
	}
	return BlueprintSpec{
		Tables: tables,
		Procs:  procs,
		Seed: func(seed func(table string, key uint64, vals tuple.Tuple)) {
			w.Populate(seedByName(seed))
		},
	}
}

// seedByName adapts a name-routed seed function to PopulateExec: workloads
// seed through their own table handles, and the adapter forwards each row
// under the handle's name.
type seedByName func(table string, key uint64, vals tuple.Tuple)

// Seed implements PopulateExec.
func (f seedByName) Seed(t *engine.Table, key uint64, vals tuple.Tuple) {
	f(t.Name(), key, vals)
}
