package workload

// Partition-key helpers: given a table name and a packed primary key,
// recover the partitioning attribute a shard router hashes on. These are
// the inverse of the key packers above — TPC-C keys carry the warehouse in
// their highest field, Smallbank keys ARE the customer id — exported so
// internal/shard can place both seed rows and extracted transaction
// footprints without re-deriving the bit layouts.

// WarehouseOf returns the warehouse id packed into a TPC-C key, or
// ok=false for tables with no warehouse affinity (ITEM, which every shard
// replicates, and unknown tables).
func WarehouseOf(table string, key uint64) (w int64, ok bool) {
	switch table {
	case "WAREHOUSE":
		return int64(key), true
	case "DISTRICT":
		return int64(key >> 8), true
	case "CUSTOMER", "OORDER", "NEW_ORDER":
		return int64(key >> 32), true
	case "ORDER_LINE":
		return int64(key >> 40), true
	case "STOCK":
		return int64(key >> 20), true
	case "HISTORY":
		return int64(key >> 48), true
	default: // ITEM and anything unrecognized: replicated / no affinity
		return 0, false
	}
}

// AccountRangeOf maps a Smallbank customer id (1-based, as seeded) onto one
// of `shards` contiguous account ranges over `customers` accounts: shard i
// owns customers (i*customers/shards, (i+1)*customers/shards]. Out-of-range
// ids clamp to the edge shards so a router never indexes out of bounds.
func AccountRangeOf(custid int64, shards, customers int) int {
	if shards <= 1 {
		return 0
	}
	if custid < 1 {
		return 0
	}
	if custid > int64(customers) {
		return shards - 1
	}
	return int((custid - 1) * int64(shards) / int64(customers))
}
