package workload

import "testing"

// TestWarehouseOf checks the unpack helpers against the packers
// themselves: whatever keyX.Pack puts in, WarehouseOf must get back out.
func TestWarehouseOf(t *testing.T) {
	cases := []struct {
		table string
		key   uint64
		want  int64
		ok    bool
	}{
		{"WAREHOUSE", 7, 7, true},
		{"DISTRICT", keyD.Pack(7, 3), 7, true},
		{"CUSTOMER", keyC.Pack(7, 3, 99), 7, true},
		{"OORDER", keyO.Pack(2049, 9, 12345), 2049, true},
		{"NEW_ORDER", keyO.Pack(1, 1, 1), 1, true},
		{"ORDER_LINE", keyOL.Pack(5, 10, 31, 4), 5, true},
		{"STOCK", keyS.Pack(4095, 999), 4095, true},
		{"HISTORY", keyH.Pack(12, 8, 77, 65535), 12, true},
		{"ITEM", 999, 0, false},
		{"NoSuchTable", 1, 0, false},
	}
	for _, c := range cases {
		w, ok := WarehouseOf(c.table, c.key)
		if w != c.want || ok != c.ok {
			t.Errorf("WarehouseOf(%s, %#x) = (%d, %v), want (%d, %v)", c.table, c.key, w, ok, c.want, c.ok)
		}
	}
}

// TestAccountRangeOf checks contiguity (every customer lands on exactly one
// shard, ranges are even), monotonicity, and edge clamping.
func TestAccountRangeOf(t *testing.T) {
	cases := []struct {
		custid            int64
		shards, customers int
		want              int
	}{
		{1, 4, 100, 0},
		{25, 4, 100, 0},
		{26, 4, 100, 1},
		{50, 4, 100, 1},
		{51, 4, 100, 2},
		{100, 4, 100, 3},
		{1, 1, 100, 0},
		{42, 1, 100, 0},
		{0, 4, 100, 0},   // below range clamps low
		{-5, 4, 100, 0},  // below range clamps low
		{101, 4, 100, 3}, // above range clamps high
		{7, 3, 10, 1},    // uneven split: 10 customers over 3 shards
		{10, 3, 10, 2},
	}
	for _, c := range cases {
		if got := AccountRangeOf(c.custid, c.shards, c.customers); got != c.want {
			t.Errorf("AccountRangeOf(%d, %d, %d) = %d, want %d", c.custid, c.shards, c.customers, got, c.want)
		}
	}

	// Every customer maps to exactly one shard and counts are balanced
	// within one of each other.
	const shards, customers = 4, 1000
	counts := make([]int, shards)
	prev := 0
	for id := int64(1); id <= customers; id++ {
		s := AccountRangeOf(id, shards, customers)
		if s < prev {
			t.Fatalf("AccountRangeOf not monotone at custid %d: %d after %d", id, s, prev)
		}
		prev = s
		counts[s]++
	}
	for i, n := range counts {
		if n != customers/shards {
			t.Errorf("shard %d owns %d customers, want %d", i, n, customers/shards)
		}
	}
}
