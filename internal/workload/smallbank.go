package workload

import (
	"math/rand"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// Smallbank: three tables (ACCOUNTS, SAVINGS, CHECKING) and the six
// standard procedures. Balance is read-only; the other five generate logs.
// Unlike TPC-C, Smallbank transactions carry one write apiece, which is why
// the paper's Table 1 reports command logs roughly the same size as
// logical logs here (LL/CL = 0.92).

// SmallbankConfig scales the workload.
type SmallbankConfig struct {
	Customers int
	// HotspotPct sends this percentage of transactions to the hot 100
	// accounts, following the standard Smallbank skew.
	HotspotPct int
}

// DefaultSmallbankConfig returns a laptop-scale configuration.
func DefaultSmallbankConfig() SmallbankConfig {
	return SmallbankConfig{Customers: 10_000, HotspotPct: 25}
}

// Smallbank is the workload instance.
type Smallbank struct {
	cfg SmallbankConfig
	db  *engine.Database
	reg *proc.Registry

	Amalgamate      *proc.Compiled
	DepositChecking *proc.Compiled
	SendPayment     *proc.Compiled
	TransactSavings *proc.Compiled
	WriteCheck      *proc.Compiled
	Balance         *proc.Compiled
}

// NewSmallbank builds the catalog and procedures.
func NewSmallbank(cfg SmallbankConfig) *Smallbank {
	if cfg.Customers <= 0 {
		cfg = DefaultSmallbankConfig()
	}
	s := &Smallbank{cfg: cfg, db: engine.NewDatabase(), reg: proc.NewRegistry()}
	s.db.MustAddTable(tuple.MustSchema("ACCOUNTS",
		tuple.Col("custid", tuple.KindInt),
		tuple.Col("name", tuple.KindString),
	))
	s.db.MustAddTable(tuple.MustSchema("SAVINGS",
		tuple.Col("custid", tuple.KindInt),
		tuple.Col("bal", tuple.KindFloat),
	))
	s.db.MustAddTable(tuple.MustSchema("CHECKING",
		tuple.Col("custid", tuple.KindInt),
		tuple.Col("bal", tuple.KindFloat),
	))

	c1, c2, amt := proc.Pm("c1"), proc.Pm("c2"), proc.Pm("amt")

	// Amalgamate(c1, c2): move all of c1's funds into c2's checking.
	s.Amalgamate = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "Amalgamate",
		Params: []proc.ParamDef{proc.P("c1"), proc.P("c2")},
		Body: []proc.Stmt{
			proc.Read("sv", "SAVINGS", c1, "bal"),
			proc.Write("SAVINGS", c1, proc.Set("bal", proc.CF(0))),
			proc.Read("ck", "CHECKING", c1, "bal"),
			proc.Write("CHECKING", c1, proc.Set("bal", proc.CF(0))),
			proc.Read("dst", "CHECKING", c2, "bal"),
			proc.Write("CHECKING", c2,
				proc.Set("bal", proc.Add(proc.V("dst"), proc.Add(proc.V("sv"), proc.V("ck"))))),
		},
	})

	// DepositChecking(c1, amt).
	s.DepositChecking = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "DepositChecking",
		Params: []proc.ParamDef{proc.P("c1"), proc.P("amt")},
		Body: []proc.Stmt{
			proc.Read("ck", "CHECKING", c1, "bal"),
			proc.Write("CHECKING", c1, proc.Set("bal", proc.Add(proc.V("ck"), amt))),
		},
	})

	// SendPayment(c1, c2, amt): checking-to-checking transfer if funded.
	s.SendPayment = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "SendPayment",
		Params: []proc.ParamDef{proc.P("c1"), proc.P("c2"), proc.P("amt")},
		Body: []proc.Stmt{
			proc.Read("src", "CHECKING", c1, "bal"),
			proc.If(proc.Ge(proc.V("src"), amt),
				proc.Write("CHECKING", c1, proc.Set("bal", proc.Sub(proc.V("src"), amt))),
				proc.Read("dst", "CHECKING", c2, "bal"),
				proc.Write("CHECKING", c2, proc.Set("bal", proc.Add(proc.V("dst"), amt))),
			),
		},
	})

	// TransactSavings(c1, amt): adjust savings, aborting on overdraft.
	s.TransactSavings = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "TransactSavings",
		Params: []proc.ParamDef{proc.P("c1"), proc.P("amt")},
		Body: []proc.Stmt{
			proc.Read("sv", "SAVINGS", c1, "bal"),
			proc.If(proc.Lt(proc.Add(proc.V("sv"), amt), proc.CF(0)), proc.Abort()),
			proc.Write("SAVINGS", c1, proc.Set("bal", proc.Add(proc.V("sv"), amt))),
		},
	})

	// WriteCheck(c1, amt): debit checking, with an overdraft penalty when
	// total funds are short.
	s.WriteCheck = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "WriteCheck",
		Params: []proc.ParamDef{proc.P("c1"), proc.P("amt")},
		Body: []proc.Stmt{
			proc.Read("sv", "SAVINGS", c1, "bal"),
			proc.Read("ck", "CHECKING", c1, "bal"),
			proc.IfElse(proc.Lt(proc.Add(proc.V("sv"), proc.V("ck")), amt),
				[]proc.Stmt{proc.Write("CHECKING", c1,
					proc.Set("bal", proc.Sub(proc.V("ck"), proc.Add(amt, proc.CF(1)))))},
				[]proc.Stmt{proc.Write("CHECKING", c1,
					proc.Set("bal", proc.Sub(proc.V("ck"), amt)))},
			),
		},
	})

	// Balance(c1): read-only.
	s.Balance = s.reg.MustRegister(s.db, &proc.Procedure{
		Name:   "Balance",
		Params: []proc.ParamDef{proc.P("c1")},
		Body: []proc.Stmt{
			proc.Read("sv", "SAVINGS", c1, "bal"),
			proc.Read("ck", "CHECKING", c1, "bal"),
		},
	})
	return s
}

// Name implements Workload.
func (s *Smallbank) Name() string { return "smallbank" }

// DB implements Workload.
func (s *Smallbank) DB() *engine.Database { return s.db }

// Registry implements Workload.
func (s *Smallbank) Registry() *proc.Registry { return s.reg }

// Config returns the scale configuration.
func (s *Smallbank) Config() SmallbankConfig { return s.cfg }

// LoggingProcs returns the procedures the GDG is built over.
func (s *Smallbank) LoggingProcs() []*proc.Compiled {
	return []*proc.Compiled{
		s.Amalgamate, s.DepositChecking, s.SendPayment, s.TransactSavings, s.WriteCheck,
	}
}

// Populate implements Workload.
func (s *Smallbank) Populate(exec PopulateExec) {
	acc := s.db.Table("ACCOUNTS")
	sav := s.db.Table("SAVINGS")
	chk := s.db.Table("CHECKING")
	for c := 1; c <= s.cfg.Customers; c++ {
		exec.Seed(acc, uint64(c), tuple.Tuple{
			tuple.I(int64(c)), tuple.S(filler("customer-name", 32)),
		})
		exec.Seed(sav, uint64(c), tuple.Tuple{tuple.I(int64(c)), tuple.F(2000)})
		exec.Seed(chk, uint64(c), tuple.Tuple{tuple.I(int64(c)), tuple.F(1000)})
	}
}

func (s *Smallbank) pickCustomer(rng *rand.Rand) int64 {
	if rng.Intn(100) < s.cfg.HotspotPct {
		hot := s.cfg.Customers / 100
		if hot < 1 {
			hot = 1
		}
		return int64(1 + rng.Intn(hot))
	}
	return int64(1 + rng.Intn(s.cfg.Customers))
}

// Generate implements Workload: 15% of each writer, 25% Balance.
func (s *Smallbank) Generate(rng *rand.Rand) Txn {
	c1 := tuple.I(s.pickCustomer(rng))
	c2 := tuple.I(s.pickCustomer(rng))
	amt := tuple.F(1 + float64(rng.Intn(9900))/100)
	switch rng.Intn(100) {
	case 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14:
		return Txn{Proc: s.Amalgamate, Args: proc.Args{proc.A(c1), proc.A(c2)}}
	default:
	}
	switch roll := rng.Intn(100); {
	case roll < 20:
		return Txn{Proc: s.DepositChecking, Args: proc.Args{proc.A(c1), proc.A(amt)}}
	case roll < 40:
		return Txn{Proc: s.SendPayment, Args: proc.Args{proc.A(c1), proc.A(c2), proc.A(amt)}}
	case roll < 60:
		// Mostly deposits; occasional withdrawals that may abort.
		v := amt
		if rng.Intn(4) == 0 {
			v = tuple.F(-v.Float())
		}
		return Txn{Proc: s.TransactSavings, Args: proc.Args{proc.A(c1), proc.A(v)}, MayAbort: true}
	case roll < 80:
		return Txn{Proc: s.WriteCheck, Args: proc.Args{proc.A(c1), proc.A(amt)}}
	default:
		return Txn{Proc: s.Balance, Args: proc.Args{proc.A(c1)}, ReadOnly: true}
	}
}
