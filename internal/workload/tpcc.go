package workload

import (
	"math/rand"
	"strings"
	"sync"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
)

// TPC-C (scaled). The five standard transaction types are modeled in the
// proc IR: NewOrder, Payment, and Delivery generate log records;
// OrderStatus and StockLevel are read-only and, as in the paper's Appendix
// C, are excluded from the dependency analysis because they produce no
// logs.
//
// Simplifications relative to the full specification, chosen to keep the
// workload deterministic under command-log replay (Section 5 requires
// deterministic procedures with computable read/write sets):
//
//   - Customer lookup is by ID (the 60% by-last-name path needs secondary
//     index scans).
//   - Delivery receives the order IDs to deliver as parameters; the
//     generator tracks the per-district undelivered frontier instead of
//     the DBMS scanning for the oldest NEW-ORDER row.
//   - Delivery credits the customer with the first order line's amount
//     (summing all lines would need a data-dependent loop).
//   - History rows are keyed by (warehouse, district, customer,
//     payment count), which is derivable deterministically from the
//     customer row.
//
// Tuple widths follow the spec's order of magnitude (Customer ~500B wide,
// Stock ~300B) so the Table 1 log-size ratios reproduce.

// TPCCConfig scales the workload.
type TPCCConfig struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	// InitOrdersPerDistrict seeds delivered and undelivered orders.
	InitOrdersPerDistrict int
	// LinesPerOrder is the order-line count (spec: 5-15; fixed here so
	// population is deterministic).
	LinesPerOrder int
	// DisableInserts removes the insert operations from NewOrder and
	// Payment, as the paper's Section 6.1.1 does to bound database growth.
	DisableInserts bool
	// InvalidItemPct is the percentage of NewOrder transactions carrying an
	// unused item, causing a rollback (spec: 1%).
	InvalidItemPct int
}

// DefaultTPCCConfig returns a laptop-scale configuration.
func DefaultTPCCConfig() TPCCConfig {
	return TPCCConfig{
		Warehouses:            2,
		DistrictsPerWH:        10,
		CustomersPerDistrict:  100,
		Items:                 1000,
		InitOrdersPerDistrict: 30,
		LinesPerOrder:         5,
		InvalidItemPct:        1,
	}
}

// Key packers: W=12 bits, D=8, C/O=24, L=8, I=20.
var (
	keyD  = tuple.NewKeyPacker(12, 8)
	keyC  = tuple.NewKeyPacker(12, 8, 24)
	keyO  = tuple.NewKeyPacker(12, 8, 24)
	keyOL = tuple.NewKeyPacker(12, 8, 24, 8)
	keyS  = tuple.NewKeyPacker(12, 20)
	keyH  = tuple.NewKeyPacker(12, 8, 24, 16)
)

// Key expression helpers: the same packing written as IR arithmetic so the
// dynamic analysis can evaluate keys from parameters and read registers.
func keyExprD(w, d proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(w, proc.CI(1<<8)), d)
}

func keyExprC(w, d, c proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(keyExprD(w, d), proc.CI(1<<24)), c)
}

func keyExprO(w, d, o proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(keyExprD(w, d), proc.CI(1<<24)), o)
}

func keyExprOL(w, d, o, l proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(keyExprO(w, d, o), proc.CI(1<<8)), l)
}

func keyExprS(w, i proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(w, proc.CI(1<<20)), i)
}

func keyExprH(w, d, c, seq proc.Expr) proc.Expr {
	return proc.Add(proc.Mul(keyExprC(w, d, c), proc.CI(1<<16)), seq)
}

// TPCC is the workload instance.
type TPCC struct {
	cfg TPCCConfig
	db  *engine.Database
	reg *proc.Registry

	NewOrder    *proc.Compiled
	Payment     *proc.Compiled
	Delivery    *proc.Compiled
	OrderStatus *proc.Compiled
	StockLevel  *proc.Compiled

	// Generator state: per-(w,d) next order ID and undelivered frontier.
	mu        sync.Mutex
	nextOID   []int
	delivered []int
}

// NewTPCC builds the catalog and compiles the procedures.
func NewTPCC(cfg TPCCConfig) *TPCC {
	if cfg.Warehouses <= 0 {
		cfg = DefaultTPCCConfig()
	}
	t := &TPCC{cfg: cfg, db: engine.NewDatabase(), reg: proc.NewRegistry()}
	t.db.MustAddTable(tuple.MustSchema("WAREHOUSE",
		tuple.Col("w_id", tuple.KindInt),
		tuple.Col("w_name", tuple.KindString),
		tuple.Col("w_street", tuple.KindString),
		tuple.Col("w_city", tuple.KindString),
		tuple.Col("w_state", tuple.KindString),
		tuple.Col("w_zip", tuple.KindString),
		tuple.Col("w_tax", tuple.KindFloat),
		tuple.Col("w_ytd", tuple.KindFloat),
	))
	t.db.MustAddTable(tuple.MustSchema("DISTRICT",
		tuple.Col("d_id", tuple.KindInt),
		tuple.Col("d_name", tuple.KindString),
		tuple.Col("d_street", tuple.KindString),
		tuple.Col("d_city", tuple.KindString),
		tuple.Col("d_state", tuple.KindString),
		tuple.Col("d_zip", tuple.KindString),
		tuple.Col("d_tax", tuple.KindFloat),
		tuple.Col("d_ytd", tuple.KindFloat),
		tuple.Col("d_next_o_id", tuple.KindInt),
	))
	t.db.MustAddTable(tuple.MustSchema("CUSTOMER",
		tuple.Col("c_id", tuple.KindInt),
		tuple.Col("c_first", tuple.KindString),
		tuple.Col("c_middle", tuple.KindString),
		tuple.Col("c_last", tuple.KindString),
		tuple.Col("c_street", tuple.KindString),
		tuple.Col("c_city", tuple.KindString),
		tuple.Col("c_state", tuple.KindString),
		tuple.Col("c_zip", tuple.KindString),
		tuple.Col("c_phone", tuple.KindString),
		tuple.Col("c_since", tuple.KindInt),
		tuple.Col("c_credit", tuple.KindString),
		tuple.Col("c_credit_lim", tuple.KindFloat),
		tuple.Col("c_discount", tuple.KindFloat),
		tuple.Col("c_balance", tuple.KindFloat),
		tuple.Col("c_ytd_payment", tuple.KindFloat),
		tuple.Col("c_payment_cnt", tuple.KindInt),
		tuple.Col("c_delivery_cnt", tuple.KindInt),
		tuple.Col("c_data", tuple.KindString),
	))
	t.db.MustAddTable(tuple.MustSchema("HISTORY",
		tuple.Col("h_c_id", tuple.KindInt),
		tuple.Col("h_date", tuple.KindInt),
		tuple.Col("h_amount", tuple.KindFloat),
		tuple.Col("h_data", tuple.KindString),
	))
	t.db.MustAddTable(tuple.MustSchema("NEW_ORDER",
		tuple.Col("no_o_id", tuple.KindInt),
	))
	t.db.MustAddTable(tuple.MustSchema("OORDER",
		tuple.Col("o_id", tuple.KindInt),
		tuple.Col("o_c_id", tuple.KindInt),
		tuple.Col("o_carrier_id", tuple.KindInt),
		tuple.Col("o_ol_cnt", tuple.KindInt),
		tuple.Col("o_entry_d", tuple.KindInt),
	))
	t.db.MustAddTable(tuple.MustSchema("ORDER_LINE",
		tuple.Col("ol_i_id", tuple.KindInt),
		tuple.Col("ol_supply_w_id", tuple.KindInt),
		tuple.Col("ol_quantity", tuple.KindInt),
		tuple.Col("ol_amount", tuple.KindFloat),
		tuple.Col("ol_dist_info", tuple.KindString),
	))
	t.db.MustAddTable(tuple.MustSchema("ITEM",
		tuple.Col("i_id", tuple.KindInt),
		tuple.Col("i_im_id", tuple.KindInt),
		tuple.Col("i_name", tuple.KindString),
		tuple.Col("i_price", tuple.KindFloat),
		tuple.Col("i_data", tuple.KindString),
	))
	t.db.MustAddTable(tuple.MustSchema("STOCK",
		tuple.Col("s_i_id", tuple.KindInt),
		tuple.Col("s_quantity", tuple.KindInt),
		tuple.Col("s_dist", tuple.KindString),
		tuple.Col("s_ytd", tuple.KindInt),
		tuple.Col("s_order_cnt", tuple.KindInt),
		tuple.Col("s_remote_cnt", tuple.KindInt),
		tuple.Col("s_data", tuple.KindString),
	))

	t.NewOrder = t.reg.MustRegister(t.db, t.newOrderProc())
	t.Payment = t.reg.MustRegister(t.db, t.paymentProc())
	t.Delivery = t.reg.MustRegister(t.db, t.deliveryProc())
	t.OrderStatus = t.reg.MustRegister(t.db, t.orderStatusProc())
	t.StockLevel = t.reg.MustRegister(t.db, t.stockLevelProc())

	nwd := cfg.Warehouses * cfg.DistrictsPerWH
	t.nextOID = make([]int, nwd)
	t.delivered = make([]int, nwd)
	for i := range t.nextOID {
		t.nextOID[i] = cfg.InitOrdersPerDistrict + 1
		// The last third of the initial orders are undelivered.
		t.delivered[i] = cfg.InitOrdersPerDistrict - cfg.InitOrdersPerDistrict/3
	}
	return t
}

// newOrderProc builds the NewOrder transaction template. Parameters:
// w, d, c, items[], supplies[], quantities[], invalid (1 aborts after the
// reads, modeling the spec's 1% rollback).
func (t *TPCC) newOrderProc() *proc.Procedure {
	w, d, c := proc.Pm("w"), proc.Pm("d"), proc.Pm("c")
	body := []proc.Stmt{
		proc.Read("wtax", "WAREHOUSE", w, "w_tax"),
		proc.Read("dtax", "DISTRICT", keyExprD(w, d), "d_tax"),
		proc.Read("oid", "DISTRICT", keyExprD(w, d), "d_next_o_id"),
		proc.Write("DISTRICT", keyExprD(w, d),
			proc.Set("d_next_o_id", proc.Add(proc.V("oid"), proc.CI(1)))),
		proc.Read("disc", "CUSTOMER", keyExprC(w, d, c), "c_discount"),
		proc.If(proc.Eq(proc.Pm("invalid"), proc.CI(1)), proc.Abort()),
	}
	if !t.cfg.DisableInserts {
		body = append(body,
			proc.Insert("OORDER", keyExprO(w, d, proc.V("oid")),
				proc.V("oid"), c, proc.CI(0), proc.Pm("olcnt"), proc.Pm("now")),
			proc.Insert("NEW_ORDER", keyExprO(w, d, proc.V("oid")), proc.V("oid")),
		)
	}
	loop := []proc.Stmt{
		proc.Read("price", "ITEM", proc.V("item"), "i_price"),
		proc.Read("sqty", "STOCK", keyExprS(proc.Pm("supw"), proc.V("item")), "s_quantity"),
		proc.Read("sytd", "STOCK", keyExprS(proc.Pm("supw"), proc.V("item")), "s_ytd"),
		proc.Read("socnt", "STOCK", keyExprS(proc.Pm("supw"), proc.V("item")), "s_order_cnt"),
		proc.Write("STOCK", keyExprS(proc.Pm("supw"), proc.V("item")),
			proc.Set("s_quantity", proc.Sub(proc.V("sqty"), proc.Pm("qty"))),
			proc.Set("s_ytd", proc.Add(proc.V("sytd"), proc.Pm("qty"))),
			proc.Set("s_order_cnt", proc.Add(proc.V("socnt"), proc.CI(1)))),
	}
	if !t.cfg.DisableInserts {
		loop = append(loop,
			proc.Insert("ORDER_LINE", keyExprOL(w, d, proc.V("oid"), proc.V("ln")),
				proc.V("item"), proc.Pm("supw"), proc.Pm("qty"),
				proc.Mul(proc.V("price"), proc.Pm("qty")),
				proc.CS("dist-info-000000000000000000000000")),
		)
	}
	body = append(body, proc.ForEachIdx("ln", "item", "items", loop...))
	return &proc.Procedure{
		Name: "NewOrder",
		Params: []proc.ParamDef{
			proc.P("w"), proc.P("d"), proc.P("c"), proc.P("items"),
			proc.P("supw"), proc.P("qty"), proc.P("olcnt"), proc.P("now"), proc.P("invalid"),
		},
		Body: body,
	}
}

// paymentProc: Payment(w, d, cw, cd, c, amount, now).
func (t *TPCC) paymentProc() *proc.Procedure {
	w, d := proc.Pm("w"), proc.Pm("d")
	cw, cd, c := proc.Pm("cw"), proc.Pm("cd"), proc.Pm("c")
	amt := proc.Pm("amount")
	ckey := keyExprC(cw, cd, c)
	body := []proc.Stmt{
		proc.Read("wytd", "WAREHOUSE", w, "w_ytd"),
		proc.Write("WAREHOUSE", w, proc.Set("w_ytd", proc.Add(proc.V("wytd"), amt))),
		proc.Read("dytd", "DISTRICT", keyExprD(w, d), "d_ytd"),
		proc.Write("DISTRICT", keyExprD(w, d),
			proc.Set("d_ytd", proc.Add(proc.V("dytd"), amt))),
		proc.Read("bal", "CUSTOMER", ckey, "c_balance"),
		proc.Read("ytdp", "CUSTOMER", ckey, "c_ytd_payment"),
		proc.Read("pcnt", "CUSTOMER", ckey, "c_payment_cnt"),
		proc.Write("CUSTOMER", ckey,
			proc.Set("c_balance", proc.Sub(proc.V("bal"), amt)),
			proc.Set("c_ytd_payment", proc.Add(proc.V("ytdp"), amt)),
			proc.Set("c_payment_cnt", proc.Add(proc.V("pcnt"), proc.CI(1)))),
	}
	if !t.cfg.DisableInserts {
		body = append(body,
			proc.Insert("HISTORY", keyExprH(cw, cd, c, proc.V("pcnt")),
				c, proc.Pm("now"), amt, proc.CS("history-data-filler-012345678901")),
		)
	}
	return &proc.Procedure{
		Name: "Payment",
		Params: []proc.ParamDef{
			proc.P("w"), proc.P("d"), proc.P("cw"), proc.P("cd"), proc.P("c"),
			proc.P("amount"), proc.P("now"),
		},
		Body: body,
	}
}

// deliveryProc: Delivery(w, carrier, pairs[]). Each list element packs one
// (district, order) pair as district*2^24 + order — a ForEach iterates one
// list, so paired values travel packed.
func (t *TPCC) deliveryProc() *proc.Procedure {
	w := proc.Pm("w")
	packed := proc.V("pair")
	dd := proc.Bin(proc.OpDiv, packed, proc.CI(1<<24))
	oo := proc.Bin(proc.OpMod, packed, proc.CI(1<<24))
	okey := keyExprO(w, dd, oo)
	return &proc.Procedure{
		Name:   "Delivery",
		Params: []proc.ParamDef{proc.P("w"), proc.P("carrier"), proc.P("pairs")},
		Body: []proc.Stmt{
			proc.ForEach("pair", "pairs",
				proc.Read("noid", "NEW_ORDER", okey, "no_o_id"),
				proc.If(proc.Ne(proc.V("noid"), proc.C(tuple.Null())),
					proc.Delete("NEW_ORDER", okey),
					proc.Read("cid", "OORDER", okey, "o_c_id"),
					proc.Write("OORDER", okey,
						proc.Set("o_carrier_id", proc.Pm("carrier"))),
					proc.Read("amt", "ORDER_LINE", keyExprOL(w, dd, oo, proc.CI(0)), "ol_amount"),
					proc.Read("cbal", "CUSTOMER", keyExprC(w, dd, proc.V("cid")), "c_balance"),
					proc.Read("cdel", "CUSTOMER", keyExprC(w, dd, proc.V("cid")), "c_delivery_cnt"),
					proc.Write("CUSTOMER", keyExprC(w, dd, proc.V("cid")),
						proc.Set("c_balance", proc.Add(proc.V("cbal"), proc.V("amt"))),
						proc.Set("c_delivery_cnt", proc.Add(proc.V("cdel"), proc.CI(1)))),
				),
			),
		},
	}
}

// orderStatusProc: read-only.
func (t *TPCC) orderStatusProc() *proc.Procedure {
	w, d, c := proc.Pm("w"), proc.Pm("d"), proc.Pm("c")
	return &proc.Procedure{
		Name:   "OrderStatus",
		Params: []proc.ParamDef{proc.P("w"), proc.P("d"), proc.P("c"), proc.P("o")},
		Body: []proc.Stmt{
			proc.Read("bal", "CUSTOMER", keyExprC(w, d, c), "c_balance"),
			proc.Read("carrier", "OORDER", keyExprO(w, d, proc.Pm("o")), "o_carrier_id"),
			proc.Read("amt", "ORDER_LINE", keyExprOL(w, d, proc.Pm("o"), proc.CI(0)), "ol_amount"),
		},
	}
}

// stockLevelProc: read-only sample of stock rows.
func (t *TPCC) stockLevelProc() *proc.Procedure {
	w, d := proc.Pm("w"), proc.Pm("d")
	return &proc.Procedure{
		Name:   "StockLevel",
		Params: []proc.ParamDef{proc.P("w"), proc.P("d"), proc.P("sample")},
		Body: []proc.Stmt{
			proc.Read("noid", "DISTRICT", keyExprD(w, d), "d_next_o_id"),
			proc.ForEach("it", "sample",
				proc.Read("q", "STOCK", keyExprS(w, proc.V("it")), "s_quantity"),
			),
		},
	}
}

// Name implements Workload.
func (t *TPCC) Name() string { return "tpcc" }

// DB implements Workload.
func (t *TPCC) DB() *engine.Database { return t.db }

// Registry implements Workload.
func (t *TPCC) Registry() *proc.Registry { return t.reg }

// Config returns the scale configuration.
func (t *TPCC) Config() TPCCConfig { return t.cfg }

// LoggingProcs returns the procedures that generate log records — the GDG
// input set (read-only transactions are ignored, Appendix C).
func (t *TPCC) LoggingProcs() []*proc.Compiled {
	return []*proc.Compiled{t.NewOrder, t.Payment, t.Delivery}
}

func filler(base string, n int) string {
	if len(base) >= n {
		return base[:n]
	}
	return base + strings.Repeat("x", n-len(base))
}

// Populate implements Workload with a deterministic initial state.
func (t *TPCC) Populate(exec PopulateExec) {
	cfg := t.cfg
	rng := rand.New(rand.NewSource(7))
	wt := t.db.Table("WAREHOUSE")
	dt := t.db.Table("DISTRICT")
	ct := t.db.Table("CUSTOMER")
	it := t.db.Table("ITEM")
	st := t.db.Table("STOCK")
	ot := t.db.Table("OORDER")
	olt := t.db.Table("ORDER_LINE")
	not := t.db.Table("NEW_ORDER")

	for i := 1; i <= cfg.Items; i++ {
		exec.Seed(it, uint64(i), tuple.Tuple{
			tuple.I(int64(i)), tuple.I(int64(rng.Intn(10000))),
			tuple.S(filler("item", 24)),
			tuple.F(1 + float64(rng.Intn(9900))/100),
			tuple.S(filler("item-data", 50)),
		})
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		exec.Seed(wt, uint64(w), tuple.Tuple{
			tuple.I(int64(w)), tuple.S(filler("wh", 10)), tuple.S(filler("street", 20)),
			tuple.S(filler("city", 20)), tuple.S("ST"), tuple.S("123456789"),
			tuple.F(float64(rng.Intn(20)) / 100), tuple.F(300000),
		})
		for i := 1; i <= cfg.Items; i++ {
			exec.Seed(st, keyS.Pack(uint64(w), uint64(i)), tuple.Tuple{
				tuple.I(int64(i)), tuple.I(int64(10 + rng.Intn(91))),
				tuple.S(filler("dist", 24)), tuple.I(0), tuple.I(0), tuple.I(0),
				tuple.S(filler("stock-data", 50)),
			})
		}
		for d := 1; d <= cfg.DistrictsPerWH; d++ {
			exec.Seed(dt, keyD.Pack(uint64(w), uint64(d)), tuple.Tuple{
				tuple.I(int64(d)), tuple.S(filler("dist", 10)), tuple.S(filler("street", 20)),
				tuple.S(filler("city", 20)), tuple.S("ST"), tuple.S("123456789"),
				tuple.F(float64(rng.Intn(20)) / 100), tuple.F(30000),
				tuple.I(int64(cfg.InitOrdersPerDistrict + 1)),
			})
			for c := 1; c <= cfg.CustomersPerDistrict; c++ {
				exec.Seed(ct, keyC.Pack(uint64(w), uint64(d), uint64(c)), tuple.Tuple{
					tuple.I(int64(c)), tuple.S(filler("first", 16)), tuple.S("OE"),
					tuple.S(filler("last", 16)), tuple.S(filler("street", 20)),
					tuple.S(filler("city", 20)), tuple.S("ST"), tuple.S("123456789"),
					tuple.S("0123456789012345"), tuple.I(0), tuple.S("GC"),
					tuple.F(50000), tuple.F(float64(rng.Intn(50)) / 100),
					tuple.F(-10), tuple.F(10), tuple.I(1), tuple.I(0),
					tuple.S(filler("customer-data", 250)),
				})
			}
			deliveredUpTo := cfg.InitOrdersPerDistrict - cfg.InitOrdersPerDistrict/3
			for o := 1; o <= cfg.InitOrdersPerDistrict; o++ {
				cID := 1 + rng.Intn(cfg.CustomersPerDistrict)
				carrier := int64(1 + rng.Intn(10))
				if o > deliveredUpTo {
					carrier = 0
					exec.Seed(not, keyO.Pack(uint64(w), uint64(d), uint64(o)),
						tuple.Tuple{tuple.I(int64(o))})
				}
				exec.Seed(ot, keyO.Pack(uint64(w), uint64(d), uint64(o)), tuple.Tuple{
					tuple.I(int64(o)), tuple.I(int64(cID)), tuple.I(carrier),
					tuple.I(int64(cfg.LinesPerOrder)), tuple.I(0),
				})
				for l := 0; l < cfg.LinesPerOrder; l++ {
					item := 1 + rng.Intn(cfg.Items)
					exec.Seed(olt, keyOL.Pack(uint64(w), uint64(d), uint64(o), uint64(l)), tuple.Tuple{
						tuple.I(int64(item)), tuple.I(int64(w)),
						tuple.I(5), tuple.F(float64(rng.Intn(9999)) / 100),
						tuple.S(filler("ol-dist", 24)),
					})
				}
			}
		}
	}
}

// Generate implements Workload with the standard mix: 45% NewOrder, 43%
// Payment, 4% Delivery, 4% OrderStatus, 4% StockLevel.
func (t *TPCC) Generate(rng *rand.Rand) Txn {
	cfg := t.cfg
	w := 1 + rng.Intn(cfg.Warehouses)
	d := 1 + rng.Intn(cfg.DistrictsPerWH)
	c := 1 + rng.Intn(cfg.CustomersPerDistrict)
	roll := rng.Intn(100)
	switch {
	case roll < 45:
		return t.genNewOrder(rng, w, d, c)
	case roll < 88:
		return t.genPayment(rng, w, d, c)
	case roll < 92:
		return t.genDelivery(rng, w)
	case roll < 96:
		return Txn{Proc: t.OrderStatus, Args: proc.Args{
			proc.A(tuple.I(int64(w))), proc.A(tuple.I(int64(d))), proc.A(tuple.I(int64(c))),
			proc.A(tuple.I(int64(1 + rng.Intn(cfg.InitOrdersPerDistrict)))),
		}, ReadOnly: true}
	default:
		sample := make([]tuple.Value, 5)
		for i := range sample {
			sample[i] = tuple.I(int64(1 + rng.Intn(cfg.Items)))
		}
		return Txn{Proc: t.StockLevel, Args: proc.Args{
			proc.A(tuple.I(int64(w))), proc.A(tuple.I(int64(d))), sample,
		}, ReadOnly: true}
	}
}

func (t *TPCC) genNewOrder(rng *rand.Rand, w, d, c int) Txn {
	cfg := t.cfg
	nItems := cfg.LinesPerOrder
	items := make([]tuple.Value, nItems)
	for i := range items {
		items[i] = tuple.I(int64(1 + rng.Intn(cfg.Items)))
	}
	invalid := int64(0)
	if rng.Intn(100) < cfg.InvalidItemPct {
		invalid = 1
	}
	if invalid == 0 {
		// A committed NewOrder consumes the district's order counter.
		t.mu.Lock()
		t.nextOID[(w-1)*cfg.DistrictsPerWH+(d-1)]++
		t.mu.Unlock()
	}
	supw := int64(w)
	if cfg.Warehouses > 1 && rng.Intn(100) < 1 {
		supw = int64(1 + rng.Intn(cfg.Warehouses)) // remote supply
	}
	return Txn{Proc: t.NewOrder, Args: proc.Args{
		proc.A(tuple.I(int64(w))), proc.A(tuple.I(int64(d))), proc.A(tuple.I(int64(c))),
		items,
		proc.A(tuple.I(supw)),
		proc.A(tuple.I(int64(1 + rng.Intn(10)))),
		proc.A(tuple.I(int64(nItems))),
		proc.A(tuple.I(20260610)),
		proc.A(tuple.I(invalid)),
	}, MayAbort: invalid == 1}
}

func (t *TPCC) genPayment(rng *rand.Rand, w, d, c int) Txn {
	cw, cd := w, d
	if t.cfg.Warehouses > 1 && rng.Intn(100) < 15 {
		cw = 1 + rng.Intn(t.cfg.Warehouses) // remote customer
		cd = 1 + rng.Intn(t.cfg.DistrictsPerWH)
	}
	return Txn{Proc: t.Payment, Args: proc.Args{
		proc.A(tuple.I(int64(w))), proc.A(tuple.I(int64(d))),
		proc.A(tuple.I(int64(cw))), proc.A(tuple.I(int64(cd))), proc.A(tuple.I(int64(c))),
		proc.A(tuple.F(1 + float64(rng.Intn(499900))/100)),
		proc.A(tuple.I(20260610)),
	}}
}

func (t *TPCC) genDelivery(rng *rand.Rand, w int) Txn {
	cfg := t.cfg
	t.mu.Lock()
	var pairs []tuple.Value
	for d := 1; d <= cfg.DistrictsPerWH; d++ {
		idx := (w-1)*cfg.DistrictsPerWH + (d - 1)
		if t.delivered[idx]+1 < t.nextOID[idx] {
			t.delivered[idx]++
			pairs = append(pairs, tuple.I(int64(d)<<24|int64(t.delivered[idx])))
		}
	}
	t.mu.Unlock()
	if len(pairs) == 0 {
		// Nothing to deliver: fall back to a payment.
		return t.genPayment(rng, w, 1+rng.Intn(cfg.DistrictsPerWH), 1+rng.Intn(cfg.CustomersPerDistrict))
	}
	return Txn{Proc: t.Delivery, Args: proc.Args{
		proc.A(tuple.I(int64(w))),
		proc.A(tuple.I(int64(1 + rng.Intn(10)))),
		pairs,
	}}
}
