package workload

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/txn"
)

func smallTPCC() TPCCConfig {
	return TPCCConfig{
		Warehouses:            2,
		DistrictsPerWH:        2,
		CustomersPerDistrict:  20,
		Items:                 50,
		InitOrdersPerDistrict: 12,
		LinesPerOrder:         3,
		InvalidItemPct:        2,
	}
}

func TestTPCCPopulateDeterministic(t *testing.T) {
	a := NewTPCC(smallTPCC())
	a.Populate(DirectPopulate{})
	b := NewTPCC(smallTPCC())
	b.Populate(DirectPopulate{})
	for _, ta := range a.DB().Tables() {
		tb := b.DB().Table(ta.Name())
		if ta.NumSlots() != tb.NumSlots() {
			t.Fatalf("table %s: %d vs %d slots", ta.Name(), ta.NumSlots(), tb.NumSlots())
		}
		ta.ScanSlots(0, ta.NumSlots(), func(r *engine.Row) {
			r2 := tb.RowBySlot(r.Slot)
			if r2 == nil || r2.Key != r.Key || !r2.LatestData().Equal(r.LatestData()) {
				t.Fatalf("table %s slot %d differs", ta.Name(), r.Slot)
			}
		})
	}
	// Expected row counts.
	cfg := smallTPCC()
	if got := a.DB().Table("CUSTOMER").IndexLen(); got != cfg.Warehouses*cfg.DistrictsPerWH*cfg.CustomersPerDistrict {
		t.Errorf("customers = %d", got)
	}
	if got := a.DB().Table("STOCK").IndexLen(); got != cfg.Warehouses*cfg.Items {
		t.Errorf("stock = %d", got)
	}
}

func TestTPCCMixExecutes(t *testing.T) {
	w := NewTPCC(smallTPCC())
	w.Populate(DirectPopulate{})
	m := txn.NewManager(w.DB(), txn.DefaultConfig())
	worker := m.NewWorker()
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	aborted := 0
	for i := 0; i < 600; i++ {
		tx := w.Generate(rng)
		counts[tx.Proc.Name()]++
		_, err := worker.Execute(tx.Proc, tx.Args, tx.AdHoc, time.Now())
		if err != nil {
			if errors.Is(err, proc.ErrAborted) && tx.MayAbort {
				aborted++
				continue
			}
			t.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
	}
	for _, name := range []string{"NewOrder", "Payment", "Delivery", "OrderStatus", "StockLevel"} {
		if counts[name] == 0 {
			t.Errorf("mix never produced %s (counts=%v)", name, counts)
		}
	}
	if aborted == 0 {
		t.Log("note: no invalid-item aborts in this sample")
	}
	// NewOrder must advance district counters.
	dk := keyD.Pack(1, 1)
	r, ok := w.DB().Table("DISTRICT").GetRow(dk)
	if !ok {
		t.Fatal("district missing")
	}
	if r.LatestData()[8].Int() <= int64(smallTPCC().InitOrdersPerDistrict+1) {
		t.Log("note: district (1,1) saw no NewOrder in this sample")
	}
}

// TestTPCCGDGStructure checks the Appendix C structure: the district
// counter, warehouse, customer, order-chain, and stock blocks exist with
// NewOrder/Payment/Delivery slices mingled, and read-only ITEM stays apart.
func TestTPCCGDGStructure(t *testing.T) {
	w := NewTPCC(smallTPCC())
	var ldgs []*analysis.LDG
	for _, p := range w.LoggingProcs() {
		ldgs = append(ldgs, analysis.BuildLDG(p))
	}
	g := analysis.BuildGDG(ldgs)
	db := w.DB()

	// Every modified table has exactly one owner block.
	owners := map[string]int{}
	for _, name := range []string{"WAREHOUSE", "DISTRICT", "CUSTOMER", "HISTORY",
		"NEW_ORDER", "OORDER", "ORDER_LINE", "STOCK"} {
		b := g.TableOwner(db.Table(name).ID())
		if b < 0 {
			t.Errorf("table %s has no owner block", name)
		}
		owners[name] = b
	}
	// ITEM is read-only: no owner.
	if g.TableOwner(db.Table("ITEM").ID()) != -1 {
		t.Error("ITEM should have no owner")
	}
	// District and Stock belong to different blocks (independent key
	// spaces — the source of TPC-C's coarse parallelism).
	if owners["DISTRICT"] == owners["STOCK"] {
		t.Errorf("DISTRICT and STOCK share block %d", owners["DISTRICT"])
	}
	// Warehouse and Customer are separate as well.
	if owners["WAREHOUSE"] == owners["CUSTOMER"] {
		t.Error("WAREHOUSE and CUSTOMER merged")
	}
	// The GDG must have several blocks (coarse-grained parallelism) and be
	// more than 3 (one per procedure would mean no decomposition).
	if g.NumBlocks() < 5 {
		t.Errorf("blocks = %d\n%s", g.NumBlocks(), g)
	}
	// NewOrder and Payment both write DISTRICT: their slices share its
	// block (the cross-procedure mingling of Figure 21).
	found := map[int]bool{}
	for _, ref := range g.Blocks[owners["DISTRICT"]].Slices {
		found[ref.ProcID] = true
	}
	if !found[w.NewOrder.ID()] || !found[w.Payment.ID()] {
		t.Errorf("district block lacks NewOrder+Payment slices: %v", g.Blocks[owners["DISTRICT"]].Slices)
	}
	// OORDER block holds NewOrder (insert) and Delivery (update) slices.
	found = map[int]bool{}
	for _, ref := range g.Blocks[owners["OORDER"]].Slices {
		found[ref.ProcID] = true
	}
	if !found[w.NewOrder.ID()] || !found[w.Delivery.ID()] {
		t.Errorf("order block lacks NewOrder+Delivery slices")
	}
}

func TestTPCCDisableInserts(t *testing.T) {
	cfg := smallTPCC()
	cfg.DisableInserts = true
	w := NewTPCC(cfg)
	w.Populate(DirectPopulate{})
	m := txn.NewManager(w.DB(), txn.DefaultConfig())
	worker := m.NewWorker()
	rng := rand.New(rand.NewSource(3))
	before := w.DB().Table("OORDER").IndexLen()
	for i := 0; i < 200; i++ {
		tx := w.Generate(rng)
		if _, err := worker.Execute(tx.Proc, tx.Args, false, time.Now()); err != nil &&
			!(errors.Is(err, proc.ErrAborted) && tx.MayAbort) {
			t.Fatal(err)
		}
	}
	if after := w.DB().Table("OORDER").IndexLen(); after != before {
		t.Errorf("inserts not disabled: OORDER grew %d -> %d", before, after)
	}
}

func TestSmallbankMixAndInvariant(t *testing.T) {
	cfg := SmallbankConfig{Customers: 50, HotspotPct: 25}
	s := NewSmallbank(cfg)
	s.Populate(DirectPopulate{})
	m := txn.NewManager(s.DB(), txn.DefaultConfig())
	worker := m.NewWorker()
	rng := rand.New(rand.NewSource(9))

	total := func() float64 {
		var sum float64
		for _, name := range []string{"SAVINGS", "CHECKING"} {
			tab := s.DB().Table(name)
			tab.ScanSlots(0, tab.NumSlots(), func(r *engine.Row) {
				sum += r.LatestData()[1].Float()
			})
		}
		return sum
	}
	before := total()
	deposits := 0.0
	for i := 0; i < 500; i++ {
		tx := s.Generate(rng)
		_, err := worker.Execute(tx.Proc, tx.Args, tx.AdHoc, time.Now())
		if err != nil {
			if errors.Is(err, proc.ErrAborted) && tx.MayAbort {
				continue
			}
			t.Fatalf("%s: %v", tx.Proc.Name(), err)
		}
		// Track money injected/removed by non-transfer procedures.
		switch tx.Proc {
		case s.DepositChecking:
			deposits += tx.Args[1][0].Float()
		case s.TransactSavings:
			deposits += tx.Args[1][0].Float()
		case s.WriteCheck:
			// Withdrawal (possibly with penalty); just mark imbalance
			// allowed.
			deposits -= tx.Args[1][0].Float()
		}
	}
	after := total()
	// Amalgamate and SendPayment conserve money; WriteCheck penalties make
	// the exact check loose. Verify the books are within the penalty sum.
	diff := after - before - deposits
	if diff > 1 || diff < -float64(500) { // at most 1 per WriteCheck penalty
		t.Errorf("money leak: before=%.2f after=%.2f deposits=%.2f diff=%.2f",
			before, after, deposits, diff)
	}
}

func TestSmallbankGDG(t *testing.T) {
	s := NewSmallbank(SmallbankConfig{Customers: 10, HotspotPct: 10})
	var ldgs []*analysis.LDG
	for _, p := range s.LoggingProcs() {
		ldgs = append(ldgs, analysis.BuildLDG(p))
	}
	g := analysis.BuildGDG(ldgs)
	db := s.DB()
	sb := g.TableOwner(db.Table("SAVINGS").ID())
	cb := g.TableOwner(db.Table("CHECKING").ID())
	if sb < 0 || cb < 0 {
		t.Fatal("owners missing")
	}
	if sb == cb {
		t.Errorf("SAVINGS and CHECKING merged into block %d\n%s", sb, g)
	}
	// Savings block precedes checking block (Amalgamate/WriteCheck flow).
	foundEdge := false
	for _, succ := range g.Succs(sb) {
		if succ == cb {
			foundEdge = true
		}
	}
	if !foundEdge {
		t.Errorf("no SAVINGS->CHECKING edge\n%s", g)
	}
	if g.TableOwner(db.Table("ACCOUNTS").ID()) != -1 {
		t.Error("ACCOUNTS should be read-only")
	}
}

func TestBankWorkloadInterface(t *testing.T) {
	var _ Workload = NewBank(10)
	var _ Workload = NewTPCC(smallTPCC())
	var _ Workload = NewSmallbank(SmallbankConfig{Customers: 10})
	b := NewBank(10)
	if b.Name() != "bank" || b.DB() == nil || b.Registry().Len() != 2 {
		t.Error("bank metadata broken")
	}
	w := NewTPCC(smallTPCC())
	if w.Name() != "tpcc" || w.Registry().Len() != 5 || len(w.LoggingProcs()) != 3 {
		t.Error("tpcc metadata broken")
	}
	s := NewSmallbank(SmallbankConfig{Customers: 10})
	if s.Name() != "smallbank" || s.Registry().Len() != 6 || len(s.LoggingProcs()) != 5 {
		t.Error("smallbank metadata broken")
	}
	// Zero configs fall back to defaults.
	if NewTPCC(TPCCConfig{}).Config().Warehouses == 0 {
		t.Error("TPCC default config not applied")
	}
	if NewSmallbank(SmallbankConfig{}).Config().Customers == 0 {
		t.Error("Smallbank default config not applied")
	}
}
