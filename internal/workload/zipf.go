package workload

import (
	"math"
	"math/rand"
)

// Zipf draws keys in [0, n) under a zipfian distribution with skew theta,
// the YCSB generator (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases"): rank 0 is the hottest key, and theta in (0, 1)
// controls how steeply popularity falls off — 0.99 is the YCSB default,
// where a few percent of keys absorb most of the accesses. The skewed-key
// mixes use it to concentrate writer traffic so snapshot scans observe
// long version chains on hot rows rather than uniform dribble.
//
// A Zipf is immutable after construction and safe for concurrent use; all
// randomness comes from the *rand.Rand passed to Next, so each worker keeps
// its own rng and draws race-free without sharing state.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta), the two-element harmonic prefix
}

// NewZipf builds a generator over n keys with skew theta. It panics on
// n == 0 or theta outside (0, 1) — the hot-key experiments have no
// meaningful uniform (theta=0) or super-linear (theta>=1) modes, and a
// silent fallback would fake skew the benchmark claims to measure.
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf over zero keys")
	}
	if theta <= 0 || theta >= 1 {
		panic("workload: Zipf theta must be in (0, 1)")
	}
	zetan := zeta(n, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		half:  zeta(2, theta),
	}
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/zetan)
	return z
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// N returns the size of the key space.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Next draws the next key in [0, n); rank 0 is the most popular.
func (z *Zipf) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}
