package workload

import (
	"math/rand"
	"sort"
	"testing"
)

func TestZipfRangeAndDeterminism(t *testing.T) {
	z := NewZipf(1000, 0.99)
	if z.N() != 1000 || z.Theta() != 0.99 {
		t.Fatalf("params = %d/%v", z.N(), z.Theta())
	}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		ka, kb := z.Next(a), z.Next(b)
		if ka != kb {
			t.Fatalf("draw %d diverged: %d vs %d", i, ka, kb)
		}
		if ka >= 1000 {
			t.Fatalf("draw %d out of range: %d", i, ka)
		}
	}
}

// TestZipfSkew: with theta=0.99 the head of the popularity ranking must
// dominate, and lowering theta must flatten the distribution.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	headShare := func(theta float64) float64 {
		z := NewZipf(n, theta)
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[z.Next(rng)]++
		}
		// Share of draws landing in the 10 hottest ranks.
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for _, c := range counts[:10] {
			top += c
		}
		return float64(top) / draws
	}
	hot := headShare(0.99)
	mild := headShare(0.5)
	if hot < 0.35 {
		t.Fatalf("theta=0.99 top-10 share = %v, want heavy skew", hot)
	}
	if mild >= hot {
		t.Fatalf("skew not monotone in theta: 0.5 -> %v, 0.99 -> %v", mild, hot)
	}
	if mild > 0.2 {
		t.Fatalf("theta=0.5 top-10 share = %v, want mild skew", mild)
	}
}

// TestZipfCoversTail: even under heavy skew the generator must still reach
// cold keys (it is a distribution over all n ranks, not a truncation).
func TestZipfCoversTail(t *testing.T) {
	z := NewZipf(100, 0.99)
	rng := rand.New(rand.NewSource(3))
	seen := make(map[uint64]bool)
	for i := 0; i < 100000; i++ {
		seen[z.Next(rng)] = true
	}
	if len(seen) < 90 {
		t.Fatalf("only %d/100 ranks ever drawn", len(seen))
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     uint64
		theta float64
	}{
		{"zero keys", 0, 0.5},
		{"theta zero", 10, 0},
		{"theta one", 10, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			NewZipf(tc.n, tc.theta)
		})
	}
}
