package pacman

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pacman/internal/checkpoint"
	"pacman/internal/proc"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// bankBlueprint declares the paper's bank example as a Blueprint: the same
// value drives Launch and every Restart, which is the point — there is no
// second copy of the catalog to keep in sync.
func bankBlueprint(accounts int) Blueprint {
	return Blueprint{
		Tables: []*Schema{
			tuple.MustSchema("Family",
				tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)),
			tuple.MustSchema("Current",
				tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)),
			tuple.MustSchema("Saving",
				tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)),
			tuple.MustSchema("Stats",
				tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)),
		},
		Procedures: []*Procedure{workload.BankTransferProc(), workload.BankDepositProc()},
		Seed: func(seed Seeder) {
			for i := 1; i <= accounts; i++ {
				spouse := int64(i - 1)
				if i%2 == 1 {
					spouse = int64(i + 1)
				}
				seed("Family", uint64(i), Tuple{tuple.I(int64(i)), tuple.I(spouse)})
				seed("Current", uint64(i), Tuple{tuple.I(int64(i)), tuple.I(1000)})
				seed("Saving", uint64(i), Tuple{tuple.I(int64(i)), tuple.I(100)})
			}
			for n := 1; n <= 10; n++ {
				seed("Stats", uint64(n), Tuple{tuple.I(int64(n)), tuple.I(0)})
			}
		},
	}
}

func depositAll(t *testing.T, d *DB, n, accounts int) {
	t.Helper()
	fe, err := d.NewFrontend(FrontendConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	futs := make([]*Future, 0, n)
	for i := 0; i < n; i++ {
		futs = append(futs, fe.Submit("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%accounts))), proc.A(tuple.I(1)), proc.A(tuple.I(1)),
		}))
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
}

func currentBalances(d *DB) map[uint64]int64 {
	out := map[uint64]int64{}
	tb := d.Table("Current")
	tb.ScanIndex(0, ^uint64(0), func(r *Row) bool {
		if data := r.LatestData(); data != nil {
			out[r.Key] = data[1].Int()
		}
		return true
	})
	return out
}

// TestRestartRoundTrip is the acceptance scenario: Launch from a blueprint,
// serve durable traffic, crash, Restart on the same devices, serve more
// traffic immediately through a Frontend, crash again, and Restart again —
// the second recovery must replay both pre- and post-restart commits. It
// runs under every logging kind with the scheme auto-selected from the
// manifest (command→CLR-P, physical→PLR, logical→LLR).
func TestRestartRoundTrip(t *testing.T) {
	const accounts, gen1, gen2 = 40, 300, 200
	for _, kind := range []LogKind{CommandLogging, PhysicalLogging, LogicalLogging} {
		t.Run(kind.String(), func(t *testing.T) {
			bp := bankBlueprint(accounts)
			db, err := Launch(bp, Options{Logging: kind, EpochInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			depositAll(t, db, gen1, accounts)
			want1 := currentBalances(db)
			db.Crash()

			db2, res1, err := Restart(db.Devices(), bp, RecoverConfig{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res1.Entries != gen1 {
				t.Fatalf("first restart replayed %d entries, want %d", res1.Entries, gen1)
			}
			if got := currentBalances(db2); len(got) != len(want1) {
				t.Fatalf("recovered %d accounts, want %d", len(got), len(want1))
			} else {
				for k, v := range want1 {
					if got[k] != v {
						t.Fatalf("account %d recovered %d, want %d", k, got[k], v)
					}
				}
			}

			// The restarted instance serves immediately, and new commit
			// timestamps land strictly above the recovered high-water mark.
			fe, err := db2.NewFrontend(FrontendConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			ts, err := fe.Exec("Deposit", Args{proc.A(tuple.I(1)), proc.A(tuple.I(1)), proc.A(tuple.I(1))})
			if err != nil {
				t.Fatalf("post-restart transaction: %v", err)
			}
			if epoch := uint32(ts >> 32); epoch <= res1.Pepoch {
				t.Fatalf("post-restart commit epoch %d not above recovered pepoch %d", epoch, res1.Pepoch)
			}
			fe.Close()
			depositAll(t, db2, gen2-1, accounts)
			want2 := currentBalances(db2)
			db2.Crash()

			db3, res2, err := Restart(db2.Devices(), bp, RecoverConfig{Threads: 2})
			if err != nil {
				t.Fatalf("second restart: %v", err)
			}
			if res2.Entries != gen1+gen2 {
				t.Fatalf("second restart replayed %d entries, want %d pre- + %d post-restart",
					res2.Entries, gen1, gen2)
			}
			got3 := currentBalances(db3)
			for k, v := range want2 {
				if got3[k] != v {
					t.Fatalf("account %d after second restart: %d, want %d", k, got3[k], v)
				}
			}
			// Still servable after the second round trip.
			fe3, err := db3.NewFrontend(FrontendConfig{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fe3.Exec("Deposit", Args{proc.A(tuple.I(2)), proc.A(tuple.I(1)), proc.A(tuple.I(1))}); err != nil {
				t.Fatalf("transaction after second restart: %v", err)
			}
			fe3.Close()
			db3.Close()
		})
	}
}

// TestRestartValidatesBlueprint: a restart whose blueprint reorders or
// drops a procedure, reshapes a table, or changes the seed must fail with
// ErrBlueprintMismatch and a diagnostic naming the divergence — not
// silently misreplay the command log.
func TestRestartValidatesBlueprint(t *testing.T) {
	bp := bankBlueprint(10)
	db, err := Launch(bp, Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	depositAll(t, db, 20, 10)
	db.Crash()

	cases := []struct {
		name string
		mut  func(Blueprint) Blueprint
		want string
	}{
		{"reordered procedures", func(b Blueprint) Blueprint {
			b.Procedures = []*Procedure{b.Procedures[1], b.Procedures[0]}
			return b
		}, "registration order"},
		{"dropped procedure", func(b Blueprint) Blueprint {
			b.Procedures = b.Procedures[:1]
			return b
		}, "procedure count"},
		{"schema drift", func(b Blueprint) Blueprint {
			tables := append([]*Schema(nil), b.Tables...)
			tables[1] = tuple.MustSchema("Current",
				tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindFloat))
			b.Tables = tables
			return b
		}, "column"},
		{"changed seed", func(b Blueprint) Blueprint {
			orig := b.Seed
			b.Seed = func(seed Seeder) {
				orig(seed)
				seed("Stats", 99, Tuple{tuple.I(99), tuple.I(0)})
			}
			return b
		}, "population"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Restart(db.Devices(), tc.mut(bp), RecoverConfig{Threads: 1})
			if !errors.Is(err, ErrBlueprintMismatch) {
				t.Fatalf("err = %v, want ErrBlueprintMismatch", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}

	// The unmodified blueprint still restarts fine afterward.
	db2, _, err := Restart(db.Devices(), bp, RecoverConfig{Threads: 1})
	if err != nil {
		t.Fatalf("valid blueprint rejected: %v", err)
	}
	db2.Close()
}

func TestRestartSchemeKindMismatch(t *testing.T) {
	bp := bankBlueprint(10)
	db, err := Launch(bp, Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	depositAll(t, db, 10, 10)
	db.Crash()
	if _, _, err := Restart(db.Devices(), bp, RecoverConfig{Scheme: PLR, Threads: 1}); err == nil ||
		!strings.Contains(err.Error(), "logged with") {
		t.Fatalf("PLR against command logs: err = %v", err)
	}
	db2, _, err := Restart(db.Devices(), bp, RecoverConfig{Scheme: CLRP, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	db2.Close()
}

// TestRestartRejectsAdoptedInstance: an instance whose population bypassed
// the fingerprinting seed path (Adopt + direct populate) persists an
// unvalidatable manifest, and Restart must refuse it — pointing at the
// offline Recover path — rather than let a nil-seed blueprint validate
// against a catalog whose population it cannot prove.
func TestRestartRejectsAdoptedInstance(t *testing.T) {
	w := workload.NewBank(10)
	d := Adopt(w.DB(), w.Registry(), Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	w.Populate(workload.DirectPopulate{})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	s := d.MustSession()
	if _, err := s.Exec("Deposit", Args{proc.A(tuple.I(1)), proc.A(tuple.I(1)), proc.A(tuple.I(1))}); err != nil {
		t.Fatal(err)
	}
	s.Retire()
	d.Close()
	d.Crash()

	spec := workload.Spec(workload.NewBank(10))
	bp := Blueprint{Tables: spec.Tables, Procedures: spec.Procs}
	_, _, err := Restart(d.Devices(), bp, RecoverConfig{Threads: 1})
	if !errors.Is(err, ErrBlueprintMismatch) || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("adopted-instance restart: err = %v, want ErrBlueprintMismatch pointing at Recover", err)
	}

	// The offline path still recovers such devices.
	w2 := workload.NewBank(10)
	d2 := Adopt(w2.DB(), w2.Registry(), Options{ExistingDevices: d.Devices()})
	w2.Populate(workload.DirectPopulate{})
	if _, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 1}); err != nil {
		t.Fatalf("offline recovery of adopted instance: %v", err)
	}
}

func TestRestartWithoutManifest(t *testing.T) {
	devices := []*Device{simdisk.New("bare", simdisk.Unlimited())}
	if _, _, err := Restart(devices, bankBlueprint(4), RecoverConfig{}); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Fatalf("bare devices: err = %v", err)
	}
}

// TestRestartWithCheckpoints crosses the lifecycle with checkpointing:
// checkpoints taken before and after a restart must chain — the
// post-restart checkpoint takes a fresh, larger id (never clobbering or
// losing to the recovered one), and the next restart recovers from the
// newest checkpoint plus the log tail.
func TestRestartWithCheckpoints(t *testing.T) {
	const accounts = 20
	bp := bankBlueprint(accounts)
	db, err := Launch(bp, Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	depositAll(t, db, 100, accounts)
	time.Sleep(3 * time.Millisecond) // let the epoch clock pass the commits
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	depositAll(t, db, 50, accounts)
	db.Crash()

	db2, res1, err := Restart(db.Devices(), bp, RecoverConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CheckpointRows == 0 {
		t.Fatal("first restart ignored the checkpoint")
	}
	if res1.Entries >= 150 {
		t.Fatalf("checkpoint did not shorten replay: %d entries", res1.Entries)
	}
	want := currentBalances(db2)

	depositAll(t, db2, 60, accounts)
	time.Sleep(3 * time.Millisecond)
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cm, err := checkpoint.FindLatest(db2.Devices())
	if err != nil || cm == nil {
		t.Fatalf("post-restart checkpoint missing: %v", err)
	}
	if cm.ID <= res1.CheckpointID {
		t.Fatalf("post-restart checkpoint id %d not above recovered id %d", cm.ID, res1.CheckpointID)
	}
	depositAll(t, db2, 10, accounts)
	db2.Crash()

	db3, res2, err := Restart(db2.Devices(), bp, RecoverConfig{Threads: 2})
	if err != nil {
		t.Fatalf("second restart: %v", err)
	}
	if res2.CheckpointID != cm.ID {
		t.Fatalf("second restart recovered checkpoint %d, want %d", res2.CheckpointID, cm.ID)
	}
	got := currentBalances(db3)
	for k := range want {
		wantBal := want[k] + deltaFor(k, 70, accounts)
		if got[k] != wantBal {
			t.Fatalf("account %d after checkpointed restart: %d, want %d", k, got[k], wantBal)
		}
	}
	db3.Close()
}

// deltaFor computes how many of n round-robin unit deposits land on account
// k (depositAll targets 1 + i%accounts).
func deltaFor(k uint64, n, accounts int) int64 {
	var d int64
	for i := 0; i < n; i++ {
		if uint64(1+i%accounts) == k {
			d++
		}
	}
	return d
}

func TestOptionsMaxRetries(t *testing.T) {
	if got := Open(Options{MaxRetries: 7}).mgr.Config().MaxRetries; got != 7 {
		t.Errorf("MaxRetries = %d, want 7", got)
	}
	if got := Open(Options{}).mgr.Config().MaxRetries; got != 10000 {
		t.Errorf("default MaxRetries = %d, want 10000", got)
	}
	b := workload.NewBank(4)
	if got := Adopt(b.DB(), b.Registry(), Options{MaxRetries: 3}).mgr.Config().MaxRetries; got != 3 {
		t.Errorf("Adopt MaxRetries = %d, want 3", got)
	}
}

// TestStartErrorVariantAndMustTwins audits the constructor pairs: Start
// returns an error (nil on the idempotent second call), and every panicking
// twin follows the Must* convention.
func TestStartErrorVariantAndMustTwins(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("second Start: %v", err)
	}
	s := d.MustSession()
	s.Retire()
	fe := d.MustFrontend(FrontendConfig{Workers: 1})
	fe.Close()
	d.Close()

	cold, _ := openBank(Options{})
	defer func() {
		if recover() == nil {
			t.Error("MustFrontend before Start should panic")
		}
	}()
	cold.MustFrontend(FrontendConfig{})
}
