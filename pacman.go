// Package pacman is a main-memory transactional storage engine with
// pluggable logging (physical, logical, command) and parallel failure
// recovery, reproducing "Fast Failure Recovery for Main-Memory DBMSs on
// Multicores" (Wu, Guo, Chan, Tan — SIGMOD 2017).
//
// The headline capability is PACMAN itself: parallel replay of
// coarse-grained command logs. Stored procedures are declared in a small IR
// (package proc re-exported here), statically decomposed into slices and a
// global dependency graph at registration time, and re-executed at recovery
// as a pipeline of piece-sets whose internal parallelism comes from the
// runtime parameter values.
//
// Typical lifecycle — declare once, launch, and restart on the same devices
// (see Blueprint, Launch, Restart):
//
//	bp := pacman.Blueprint{Tables: ..., Procedures: ..., Seed: ...}
//	db, _ := pacman.Launch(bp, pacman.Options{Logging: pacman.CommandLogging})
//	fe, _ := db.NewFrontend(pacman.FrontendConfig{Workers: 8})
//	fut := fe.Submit("Transfer", args) // returns at execution
//	ts, err := fut.Wait()              // resolves at group-commit release
//	fe.Close()                         // drain, retire the session pool
//	...
//	db.Crash()                         // simulate failure
//	db2, res, _ := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{Threads: 8})
//	// db2 is started and servable: Frontends work, new commits append to
//	// the same log devices, and a second crash+Restart recovers everything.
//
// Launch persists a catalog manifest to the devices; Restart validates the
// blueprint against it (failing loudly on reordered or drifted tables,
// procedures, or seed), recovers, and returns a started instance whose
// epoch clock and WAL resume past the recovered tail.
//
// The step-by-step Open → DefineTable → Register → Populate → Start dance
// remains available for callers that build catalogs imperatively (the
// experiment harness adopts pre-built workload catalogs via Adopt), and
// DB.Recover remains the offline-recovery escape hatch for devices without
// a manifest.
//
// The Frontend multiplexes any number of client goroutines over a bounded
// session pool and owns heartbeating; raw Sessions remain available for
// callers that need to pin one worker per goroutine (see Session).
package pacman

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pacman/internal/analysis"
	"pacman/internal/checkpoint"
	"pacman/internal/engine"
	"pacman/internal/frontend"
	"pacman/internal/health"
	"pacman/internal/metrics"
	"pacman/internal/mvcc"
	"pacman/internal/proc"
	"pacman/internal/recovery"
	"pacman/internal/sched"
	"pacman/internal/simdisk"
	"pacman/internal/tuple"
	"pacman/internal/txn"
	"pacman/internal/wal"
)

// Re-exported types so applications use one import.
type (
	// Schema describes a table (see tuple.NewSchema).
	Schema = tuple.Schema
	// Tuple is a row value.
	Tuple = tuple.Tuple
	// Value is a column value.
	Value = tuple.Value
	// Procedure is the stored-procedure IR root.
	Procedure = proc.Procedure
	// Args carries one invocation's parameters.
	Args = proc.Args
	// Scheme selects a recovery scheme.
	Scheme = recovery.Scheme
	// LogKind selects a logging scheme.
	LogKind = wal.Kind
	// RecoveryResult reports recovery phase timings.
	RecoveryResult = recovery.Result
	// DeviceConfig models storage performance.
	DeviceConfig = simdisk.Config
	// Device is a simulated storage device.
	Device = simdisk.Device
	// TS is a commit timestamp.
	TS = engine.TS
	// Table is a storage-engine table handle.
	Table = engine.Table
	// Row is a table row: a stable identity carrying the version chain.
	Row = engine.Row
	// GDG is the global dependency graph from static analysis.
	GDG = analysis.GDG
	// ReplayMode selects CLR-P's parallelism level.
	ReplayMode = sched.Mode
	// SnapshotView is a pinned consistent snapshot of the database at a
	// released epoch: reads through it never latch rows, never join OCC
	// validation, and therefore never abort writers. Close it when done so
	// version garbage collection can pass its epoch.
	SnapshotView = mvcc.View
	// MVCCStats reports the multi-version subsystem's observability
	// counters (versions reclaimed, chain lengths, GC floor, pinned views).
	MVCCStats = mvcc.Stats
	// HealthSnapshot is a point-in-time report from the gray-failure
	// watchdog: state (healthy/brownout), per-signal values vs budgets, and
	// the retained transition history. JSON-tagged for dashboards and the
	// bench harness.
	HealthSnapshot = health.Snapshot
	// SyncStats is one log device's sync-latency telemetry.
	SyncStats = wal.SyncStats
)

// Logging schemes.
const (
	NoLogging       = wal.Off
	PhysicalLogging = wal.Physical
	LogicalLogging  = wal.Logical
	CommandLogging  = wal.Command
)

// Recovery schemes. AutoScheme (the zero value) is resolved by Restart from
// the logging kind recorded in the devices' catalog manifest.
const (
	AutoScheme = recovery.Auto
	PLR        = recovery.PLR
	LLR        = recovery.LLR
	LLRP       = recovery.LLRP
	CLR        = recovery.CLR
	CLRP       = recovery.CLRP
)

// Replay modes for CLR-P (the Figure 18/19 ablations).
const (
	StaticOnly  = sched.StaticOnly
	Synchronous = sched.Synchronous
	Pipelined   = sched.Pipelined
)

// Argument helpers, re-exported so applications (and pacmand wire clients)
// can build Args without importing the internal packages: each parameter is
// a value list, so Args{A(I(7)), A(I(100))} invokes a two-parameter
// procedure with single values.

// A wraps one value as a single-valued parameter.
func A(v Value) []Value { return proc.A(v) }

// I makes an integer column value.
func I(v int64) Value { return tuple.I(v) }

// F makes a float column value.
func F(v float64) Value { return tuple.F(v) }

// S makes a string column value.
func S(v string) Value { return tuple.S(v) }

// Options configures a database instance.
type Options struct {
	// Logging selects the durability scheme. The zero value is NoLogging:
	// commits acknowledge without touching the devices and the instance
	// cannot be recovered — set CommandLogging (the paper's default),
	// PhysicalLogging, or LogicalLogging for durability.
	Logging LogKind
	// Devices is the number of simulated storage devices (default 2, like
	// the paper's two-SSD setup). Ignored when ExistingDevices is set.
	Devices int
	// DeviceConfig models each device; zero value means unlimited speed.
	DeviceConfig DeviceConfig
	// ExistingDevices reuses externally created devices (shared between a
	// crashed instance and its recovering successor).
	ExistingDevices []*Device
	// EpochInterval is the group-commit epoch length (default 10ms).
	EpochInterval time.Duration
	// BatchEpochs is the number of epochs per log batch file (default 100,
	// per the paper's Appendix A).
	BatchEpochs uint32
	// DisableSync skips fsync on log flushes (Table 3's "w/o fsync").
	DisableSync bool
	// SingleVersion disables the version chains kept on update (multi-
	// version retention is the default and is required for online
	// checkpointing to run concurrently with transactions).
	SingleVersion bool
	// CheckpointEvery enables periodic checkpointing at this interval.
	CheckpointEvery time.Duration
	// CheckpointThreads is the checkpoint writer thread count (default 1
	// per device).
	CheckpointThreads int
	// MaxRetries bounds OCC retries per transaction before the conflict
	// surfaces to the caller (default 10000).
	MaxRetries int
	// ValueLogProcs names stored procedures whose commits are always logged
	// as values (tuple records) even under command logging — the adaptive
	// per-transaction logging policy for distributed or dependency-heavy
	// procedures. The 2PC pieces of a cross-shard commit are the canonical
	// members: a shard replaying its log must never re-execute a piece whose
	// inputs came from another shard, so their effects are persisted as
	// self-contained value records (see docs/ARCHITECTURE.md, "Sharding &
	// cross-shard commit"). Unknown names are ignored.
	ValueLogProcs []string
	// OnRelease observes transactions whose results become durable (group
	// commit released). It rides the same release path that resolves
	// durable-commit Futures; prefer per-request Futures (Session.Submit,
	// Frontend.Submit) for new code — they carry per-transaction
	// (TS, ExecAt, DurableAt) instead of one global hook.
	OnRelease func(ts []TS, start []time.Time)
	// Health tunes the gray-failure watchdog (zero value: enabled with
	// generous budgets scaled off EpochInterval).
	Health HealthConfig
}

// HealthConfig tunes the health watchdog a started instance runs (see
// internal/health). The watchdog samples a handful of liveness signals —
// epoch-clock advance, persisted-epoch advance, log-device sync latency,
// and frontend queue stall — and flips every Frontend into brownout
// (shedding new work with ErrBrownout, surfaced over the wire as
// Backpressure) when a signal stays over budget, clearing it again once
// the signal recovers. The zero value enables the watchdog with budgets
// generous enough that only a genuinely gray instance — a hung or
// crawling device, a wedged epoch clock — ever trips them.
type HealthConfig struct {
	// Disable turns the watchdog off entirely.
	Disable bool
	// Interval is the sweep cadence (default max(EpochInterval, 5ms)).
	Interval time.Duration
	// TripAfter / ClearAfter are the brownout hysteresis in sweeps
	// (defaults 2 and 4 — recovery must be proven, not glimpsed).
	TripAfter  int
	ClearAfter int
	// EpochStallBudget bounds how long the epoch clock may fail to advance
	// (default max(50×EpochInterval, 1s)).
	EpochStallBudget time.Duration
	// PepochStallBudget bounds how long the persisted epoch may fail to
	// advance while logging is active (default max(100×EpochInterval, 2s)).
	// Note the SiloR liveness contract: an idle raw Session that never
	// heartbeats stalls the pepoch legitimately — this signal assumes
	// Frontends (which heartbeat internally) or well-behaved Sessions.
	PepochStallBudget time.Duration
	// SyncLatencyBudget bounds a log device's sync latency — the worst over
	// devices of max(EWMA, in-flight sync age), so a sync that never
	// returns is seen as ever-growing latency (default max(50×EpochInterval,
	// 1s)).
	SyncLatencyBudget time.Duration
	// QueueStallBudget bounds how long a frontend's submission queue may go
	// without a dequeue while non-empty (default max(100×EpochInterval, 2s)).
	QueueStallBudget time.Duration
	// OnTransition observes brownout entry/exit (after the built-in
	// frontend fan-out). Must not block.
	OnTransition func(from, to string, cause string)
	// Logf, when non-nil, receives one line per watchdog transition.
	Logf func(format string, args ...any)
}

// withDefaults scales the zero-value budgets off the instance's epoch
// cadence, flooring them at human-scale values so ordinary tests and
// deployments never trip on scheduling noise.
func (h HealthConfig) withDefaults(epoch time.Duration) HealthConfig {
	atLeast := func(d, scaled, floor time.Duration) time.Duration {
		if d > 0 {
			return d
		}
		if scaled < floor {
			return floor
		}
		return scaled
	}
	h.Interval = atLeast(h.Interval, epoch, 5*time.Millisecond)
	h.EpochStallBudget = atLeast(h.EpochStallBudget, 50*epoch, time.Second)
	h.PepochStallBudget = atLeast(h.PepochStallBudget, 100*epoch, 2*time.Second)
	h.SyncLatencyBudget = atLeast(h.SyncLatencyBudget, 50*epoch, time.Second)
	h.QueueStallBudget = atLeast(h.QueueStallBudget, 100*epoch, 2*time.Second)
	return h
}

// DB is a database instance: catalog, transaction manager, loggers, and
// (optionally) a checkpoint daemon.
type DB struct {
	opts    Options
	db      *engine.Database
	reg     *proc.Registry
	mgr     *txn.Manager
	logset  *wal.LogSet
	snap    *mvcc.Manager
	daemon  *checkpoint.Daemon
	devices []*Device
	started bool
	gdg     *analysis.GDG

	// seedHash fingerprints the deterministic initial population as rows
	// pass through Seed; the fingerprint lands in the catalog manifest.
	seedHash *wal.SeedHash
	// resumePepoch is the restart floor: the epoch up to which the devices
	// were already durable when this (restarted) instance took over.
	resumePepoch uint32
	// ckptSeed is the id of the checkpoint this instance recovered from;
	// new checkpoints take strictly larger ids.
	ckptSeed    uint32
	manualCkpts atomic.Uint32

	// valueLog is Options.ValueLogProcs as a set: procedures whose commits
	// are forced onto the value-logging path.
	valueLog map[string]bool

	// watchdog is the gray-failure monitor started with the instance; its
	// brownout transitions fan out to every live frontend. frontends is the
	// registry that fan-out walks (and the queue-stall signal samples),
	// guarded by femu; brownout caches the current state so a frontend
	// created mid-brownout starts shedding immediately.
	watchdog  *health.Watchdog
	femu      sync.Mutex
	frontends map[*frontend.Frontend]struct{}
	brownout  atomic.Bool
}

// Adopt wraps a pre-built catalog and procedure registry (e.g., one of the
// internal/workload benchmarks) in a DB instance. The experiment harness
// uses it to avoid re-declaring benchmark schemas; note that populations
// installed directly against the adopted catalog bypass Seed, so the
// persisted manifest carries no seed fingerprint and the instance cannot be
// validated by Restart — recover adopted instances with DB.Recover.
func Adopt(db *engine.Database, reg *proc.Registry, opts Options) *DB {
	d := Open(opts)
	d.db = db
	d.reg = reg
	d.mgr = txn.NewManager(db, txn.Config{
		MultiVersion:  !opts.SingleVersion,
		EpochInterval: d.opts.EpochInterval,
		MaxRetries:    d.opts.MaxRetries,
	})
	return d
}

// Open creates a database instance. Define tables and procedures, populate,
// then Start. (Launch bundles these steps from a Blueprint.)
func Open(opts Options) *DB {
	if opts.Devices <= 0 {
		opts.Devices = 2
	}
	if opts.EpochInterval <= 0 {
		opts.EpochInterval = 10 * time.Millisecond
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 10000
	}
	d := &DB{
		opts:     opts,
		db:       engine.NewDatabase(),
		reg:      proc.NewRegistry(),
		seedHash: wal.NewSeedHash(),
	}
	if len(opts.ValueLogProcs) > 0 {
		d.valueLog = make(map[string]bool, len(opts.ValueLogProcs))
		for _, name := range opts.ValueLogProcs {
			d.valueLog[name] = true
		}
	}
	if len(opts.ExistingDevices) > 0 {
		d.devices = opts.ExistingDevices
	} else {
		for i := 0; i < opts.Devices; i++ {
			d.devices = append(d.devices, simdisk.New(fmt.Sprintf("ssd%d", i), opts.DeviceConfig))
		}
	}
	d.mgr = txn.NewManager(d.db, txn.Config{
		MultiVersion:  !opts.SingleVersion,
		EpochInterval: opts.EpochInterval,
		MaxRetries:    opts.MaxRetries,
	})
	return d
}

// DefineTable adds a table to the catalog. All tables must be defined
// before procedures referencing them are registered, and in the same order
// between a logging run and its recovery run.
func (d *DB) DefineTable(s *Schema) (*Table, error) {
	return d.db.AddTable(s)
}

// MustDefineTable is DefineTable that panics on error.
func (d *DB) MustDefineTable(s *Schema) *Table {
	return d.db.MustAddTable(s)
}

// Register compiles and registers a stored procedure. Registration order
// assigns the procedure IDs recorded in command logs, so it must match
// between the logging run and recovery.
func (d *DB) Register(p *Procedure) error {
	_, err := d.reg.Register(d.db, p)
	return err
}

// MustRegister is Register that panics on error.
func (d *DB) MustRegister(p *Procedure) {
	d.reg.MustRegister(d.db, p)
}

// Table returns a table handle.
func (d *DB) Table(name string) *Table { return d.db.Table(name) }

// Seed installs one initial row (population happens before Start; it is
// not logged and must be deterministic so recovery can reproduce it when no
// checkpoint exists). Every seeded row folds into the instance's seed
// fingerprint, which Start persists in the catalog manifest and Restart
// validates against the blueprint's seed.
func (d *DB) Seed(t *Table, key uint64, vals Tuple) {
	d.seedHash.Row(t.Name(), key, vals)
	r, _ := t.GetOrCreateRow(key)
	r.Install(engine.MakeTS(0, 1), vals, false, !d.opts.SingleVersion)
}

// Populate runs a seeding function against the catalog.
func (d *DB) Populate(fn func(seed func(t *Table, key uint64, vals Tuple))) {
	fn(d.Seed)
}

// Analyze runs the static analysis over the registered log-generating
// procedures (those containing at least one modification) and returns the
// global dependency graph. Start calls it implicitly; it is exposed for
// inspection tools.
func (d *DB) Analyze() *GDG {
	var ldgs []*analysis.LDG
	for _, c := range d.reg.All() {
		writes := false
		for _, op := range c.Ops() {
			if op.Kind.IsModification() {
				writes = true
				break
			}
		}
		if writes {
			ldgs = append(ldgs, analysis.BuildLDG(c))
		}
	}
	return analysis.BuildGDG(ldgs)
}

// Start launches the epoch clock, loggers, and checkpoint daemon, runs the
// static analysis, and persists the catalog manifest (table schemas,
// procedure registration order and fingerprints, logging kind, batch
// geometry, seed fingerprint) to the first device so a later Restart can
// validate its blueprint against what was actually logged. Calling Start on
// a started instance is a no-op returning nil.
func (d *DB) Start() error {
	if d.started {
		return nil
	}
	d.gdg = d.Analyze()
	if len(d.devices) > 0 {
		if err := wal.WriteCatalogManifest(d.devices[0], d.catalogManifest()); err != nil {
			return fmt.Errorf("pacman: persisting catalog manifest: %w", err)
		}
	}
	// Only now is the instance committed to starting: a failed manifest
	// write leaves it fresh, so Start can be retried and the not-started
	// guards (NewSession, NewFrontend) keep rejecting.
	d.started = true
	d.mgr.StartEpochTicker()
	if !d.opts.SingleVersion {
		// The retention manager: version chains grow with forward processing
		// and are cut back as the persistent-epoch frontier advances (the
		// OnPepochAdvance kick below), or on the ticker when logging is off.
		d.snap = mvcc.NewManager(d.db, mvcc.Config{
			SnapshotEpoch:  d.mgr.SnapshotEpoch,
			PersistedEpoch: d.PersistedEpoch,
			Interval:       4 * d.opts.EpochInterval,
		})
	}
	cfg := wal.Config{
		Kind:          d.opts.Logging,
		BatchEpochs:   d.opts.BatchEpochs,
		FlushInterval: d.opts.EpochInterval / 4,
		Sync:          !d.opts.DisableSync,
		ResumeEpoch:   d.resumePepoch,
	}
	if d.snap != nil {
		cfg.OnPepochAdvance = func(uint32) { d.snap.Kick() }
	}
	if d.opts.OnRelease != nil {
		rel := d.opts.OnRelease
		cfg.OnRelease = func(cs []*txn.Committed) {
			tss := make([]TS, len(cs))
			starts := make([]time.Time, len(cs))
			for i, c := range cs {
				tss[i] = c.TS
				starts[i] = c.Start
			}
			rel(tss, starts)
		}
	}
	d.logset = wal.NewLogSet(d.mgr, cfg, d.devices)
	d.logset.Start()
	if d.snap != nil {
		d.snap.Start()
	}
	if d.opts.CheckpointEvery > 0 {
		ct := d.opts.CheckpointThreads
		if ct <= 0 {
			ct = len(d.devices)
		}
		d.daemon = checkpoint.NewDaemon(d.mgr, d.snap, d.devices, checkpoint.Config{
			Threads:      ct,
			IncludeSlots: d.opts.Logging == wal.Physical,
		}, d.opts.CheckpointEvery)
		d.daemon.SeedIDs(d.ckptSeed)
		d.daemon.Start()
	}
	if !d.opts.Health.Disable {
		d.startWatchdog()
	}
	return nil
}

// startWatchdog assembles the gray-failure watchdog's signal set and runs
// it. Signals sample lock-free counters and EWMAs, so the sweep costs a few
// loads per interval.
func (d *DB) startWatchdog() {
	hc := d.opts.Health.withDefaults(d.opts.EpochInterval)
	w := health.New(health.Config{
		Interval:   hc.Interval,
		TripAfter:  hc.TripAfter,
		ClearAfter: hc.ClearAfter,
		OnTransition: func(from, to health.State, cause string) {
			d.setBrownout(to == health.Brownout)
			if hc.OnTransition != nil {
				hc.OnTransition(from.String(), to.String(), cause)
			}
		},
		Logf: hc.Logf,
	})
	// Epoch clock must tick: a stalled clock freezes group commit.
	w.Register("epoch-stall", hc.EpochStallBudget,
		health.CounterAge(func() uint64 { return uint64(d.mgr.Epoch()) }))
	if d.logset.Active() {
		// The durability frontier must advance while logging; a hung device
		// or wedged flush shows here first.
		w.Register("pepoch-stall", hc.PepochStallBudget,
			health.CounterAge(func() uint64 { return uint64(d.PersistedEpoch()) }))
		// Per-device sync latency: worst of EWMA and in-flight sync age, so
		// a sync that never completes reads as ever-growing latency.
		w.Register("sync-latency", hc.SyncLatencyBudget, d.logset.SyncProbe())
	}
	// Frontend queue stall: a non-empty queue nothing dequeues from means
	// the session pool is wedged even though the clock still ticks. One
	// aggregate signal over the live-frontend registry, so frontends can
	// come and go without re-registering.
	w.Register("queue-stall", hc.QueueStallBudget, func(now time.Time) time.Duration {
		var worst time.Duration
		d.femu.Lock()
		for fe := range d.frontends {
			if v := fe.QueueStall(now); v > worst {
				worst = v
			}
		}
		d.femu.Unlock()
		return worst
	})
	d.watchdog = w
	w.Start()
}

// registerFrontend adds a frontend to the brownout fan-out (and the
// queue-stall signal), applying the current brownout state so a frontend
// born mid-brownout sheds from its first submission.
func (d *DB) registerFrontend(fe *frontend.Frontend) {
	d.femu.Lock()
	if d.frontends == nil {
		d.frontends = make(map[*frontend.Frontend]struct{})
	}
	d.frontends[fe] = struct{}{}
	fe.SetBrownout(d.brownout.Load())
	d.femu.Unlock()
}

// dropFrontend removes a closed frontend from the registry.
func (d *DB) dropFrontend(fe *frontend.Frontend) {
	d.femu.Lock()
	delete(d.frontends, fe)
	d.femu.Unlock()
}

// setBrownout flips every live frontend's shed flag; runs on the watchdog
// goroutine at each transition.
func (d *DB) setBrownout(on bool) {
	d.femu.Lock()
	d.brownout.Store(on)
	for fe := range d.frontends {
		fe.SetBrownout(on)
	}
	d.femu.Unlock()
}

// Health returns the watchdog's current snapshot: state, per-signal values
// against budgets, and the retained transition history. A disabled (or
// not-started) watchdog reports a healthy snapshot with no signals.
func (d *DB) Health() HealthSnapshot {
	if d.watchdog == nil {
		return HealthSnapshot{State: health.Healthy.String()}
	}
	return d.watchdog.Snapshot()
}

// Brownout reports whether the watchdog currently holds the instance in
// brownout (every frontend shedding new work).
func (d *DB) Brownout() bool { return d.brownout.Load() }

// SyncStats reports per-device log sync-latency telemetry (nil when logging
// is off or the instance is not started).
func (d *DB) SyncStats() []SyncStats {
	if d.logset == nil {
		return nil
	}
	return d.logset.SyncStats()
}

// MustStart is Start that panics on error.
func (d *DB) MustStart() {
	if err := d.Start(); err != nil {
		panic(err)
	}
}

// catalogManifest builds the manifest describing this instance's catalog,
// registration order, logging configuration, and seed fingerprint.
func (d *DB) catalogManifest() *wal.CatalogManifest {
	be := d.opts.BatchEpochs
	if be == 0 {
		be = wal.DefaultBatchEpochs
	}
	m := &wal.CatalogManifest{
		Kind:        d.opts.Logging,
		BatchEpochs: be,
		EpochNanos:  uint64(d.opts.EpochInterval),
		SeedFP:      d.seedHash.Sum(),
	}
	var populated bool
	for _, t := range d.db.Tables() {
		s := t.Schema()
		td := wal.TableDef{Name: t.Name()}
		for i := 0; i < s.NumColumns(); i++ {
			td.Columns = append(td.Columns, s.Column(i))
		}
		m.Tables = append(m.Tables, td)
		populated = populated || t.NumSlots() > 0
	}
	if populated && d.seedHash.Rows() == 0 {
		// Rows exist that never passed through Seed (an adopted catalog
		// populated directly): the fingerprint cannot vouch for the
		// population, so mark the manifest unvalidatable — Restart will
		// refuse it and point at the offline Recover path.
		m.SeedFP = wal.SeedUnverified
	}
	for _, c := range d.reg.All() {
		m.Procs = append(m.Procs, wal.ProcDef{Name: c.Name(), Fingerprint: wal.ProcFingerprint(c)})
	}
	return m
}

// GDGraph returns the dependency graph built at Start (nil before Start).
func (d *DB) GDGraph() *GDG { return d.gdg }

// Procedures returns the registered procedure names in registration order —
// the order that assigns procedure IDs, both in command logs and in the
// wire protocol's HelloAck procedure table (index == proc id).
func (d *DB) Procedures() []string {
	all := d.reg.All()
	names := make([]string, len(all))
	for i, c := range all {
		names[i] = c.Name()
	}
	return names
}

// Devices returns the storage devices (pass them to a recovering instance).
func (d *DB) Devices() []*Device { return d.devices }

// PersistedEpoch returns the current durable epoch.
func (d *DB) PersistedEpoch() uint32 {
	if d.logset == nil {
		return d.mgr.SafeEpoch()
	}
	return d.logset.PersistedEpoch()
}

// CheckpointRunning reports whether a checkpoint is being written.
func (d *DB) CheckpointRunning() bool {
	return d.daemon != nil && d.daemon.Running()
}

// Checkpoint takes one checkpoint immediately. Checkpoint ids increase
// monotonically, and a restarted instance numbers past the checkpoint it
// recovered from, so a newer checkpoint always wins FindLatest.
func (d *DB) Checkpoint() error {
	if d.daemon != nil {
		_, err := d.daemon.RunOnce()
		return err
	}
	ts := engine.MakeTS(d.mgr.SnapshotEpoch(), ^uint32(0))
	if d.snap != nil {
		// Pin the cut so garbage collection cannot truncate the history the
		// checkpoint is streaming while commits continue alongside it.
		v := d.snap.AcquireFresh()
		defer v.Close()
		ts = v.TS()
	}
	_, err := checkpoint.Write(d.db, d.devices, checkpoint.Config{
		Threads:      len(d.devices),
		IncludeSlots: d.opts.Logging == wal.Physical,
	}, d.ckptSeed+d.manualCkpts.Add(1), ts)
	return err
}

// ErrSingleVersion rejects snapshot reads on an instance running with
// Options.SingleVersion: without retained version chains there is no
// consistent historic cut to read.
var ErrSingleVersion = errors.New("pacman: snapshot views require multi-version retention (unset Options.SingleVersion)")

// Snapshot-view errors for explicit-epoch requests, re-exported so callers
// can classify without importing internals.
var (
	// ErrSnapshotReclaimed: the requested epoch is below the garbage
	// collector's floor — its history is gone. Retry at a newer epoch.
	ErrSnapshotReclaimed = mvcc.ErrReclaimed
	// ErrSnapshotFuture: the requested epoch is not yet released (still
	// open for commits, or not yet durable under group commit).
	ErrSnapshotFuture = mvcc.ErrFutureEpoch
)

// SnapshotView pins a consistent snapshot of the database and returns it.
// epoch 0 means "the newest released epoch"; an explicit epoch pins that
// exact cut, failing with ErrSnapshotReclaimed below the GC floor or
// ErrSnapshotFuture above the released frontier. Reads through the view
// (and Frontend.Scan, which wraps it) never abort or block writers. Close
// the view when done — its epoch is pinned against version garbage
// collection until then.
func (d *DB) SnapshotView(epoch uint32) (*SnapshotView, error) {
	if !d.started {
		return nil, ErrNotStarted
	}
	if d.snap == nil {
		return nil, ErrSingleVersion
	}
	if epoch == 0 {
		return d.snap.Acquire(), nil
	}
	return d.snap.AcquireAt(epoch)
}

// MVCCStats reports the multi-version subsystem's counters (zero value on a
// single-version or not-started instance).
func (d *DB) MVCCStats() MVCCStats {
	if d.snap == nil {
		return MVCCStats{}
	}
	return d.snap.Stats()
}

// Epoch returns the current (open) commit epoch; the difference to a
// SnapshotView's Epoch is the view's staleness.
func (d *DB) Epoch() uint32 { return d.mgr.Epoch() }

// Close shuts the instance down cleanly: retires nothing by itself (retire
// sessions first), flushes all logs, and stops background goroutines.
func (d *DB) Close() {
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	if d.daemon != nil {
		d.daemon.Stop()
	}
	if d.snap != nil {
		d.snap.Stop()
	}
	d.mgr.Stop()
	if d.logset != nil {
		d.mgr.AdvanceEpoch()
		d.logset.Close()
	}
}

// Crash simulates a power failure: all background work halts instantly and
// every device loses its unsynced tail. The in-memory state is left behind
// for post-mortem comparison; recover into a fresh instance.
func (d *DB) Crash() {
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	if d.daemon != nil {
		d.daemon.Stop()
	}
	if d.snap != nil {
		d.snap.Stop()
	}
	d.mgr.Stop()
	if d.logset != nil {
		// A flush blocked inside a gray hung-sync fault must fail now, or
		// Abort's pipeline join would deadlock on it.
		for _, dev := range d.devices {
			dev.FailHungSyncs()
		}
		d.logset.Abort()
	}
	for _, dev := range d.devices {
		dev.Crash()
	}
}

// ErrNotStarted is returned by NewSession and NewFrontend (and panicked by
// Session) when the database has not been started.
var ErrNotStarted = errors.New("pacman: database not started")

// Future is the durable-commit handle returned by the asynchronous
// submission APIs (Session.Submit, Frontend.Submit). It resolves when the
// transaction's epoch is group-commit released, carrying the commit
// timestamp and the ExecAt/DurableAt instants for per-request latency
// measurement; it resolves with an error when execution fails or the
// instance crashes or closes before durability.
type Future = txn.Future

// Three distinct sentinel errors can resolve a Future, and they mean
// different things — check all three when classifying outcomes:
//
//   - ErrCrashed: the transaction EXECUTED (its in-memory effects were
//     visible) but was not durable at the crash; recovery will not replay it.
//   - ErrClosed: the transaction EXECUTED but its epoch was never released
//     before Close (e.g. an unretired raw Session held back the safe epoch).
//   - ErrFrontendClosed (frontend.go): the submission was REJECTED by a
//     closed Frontend and never executed at all.
var (
	ErrCrashed = wal.ErrCrashed
	ErrClosed  = wal.ErrClosed
)

// Gray-failure sentinels, re-exported from the internals so callers can
// classify without extra imports:
//
//   - ErrDeadlineExceeded: the request's deadline passed before its durable
//     ack. Execution state is UNKNOWN (like a connection loss) — the
//     transaction may still commit durably after the caller gave up, so
//     never auto-retry it.
//   - ErrBrownout: the health watchdog is shedding new work; the request was
//     NEVER executed and is always safe to resubmit after backoff.
var (
	ErrDeadlineExceeded = txn.ErrDeadlineExceeded
	ErrBrownout         = frontend.ErrBrownout
)

// Session is a worker-thread handle for executing transactions, pinned to
// one goroutine. It is the low-level API: the caller owns the SiloR
// liveness contract — an idle Session must Heartbeat (or Retire), or group
// commit stalls on it. Most applications should use a Frontend instead,
// which multiplexes client goroutines over a session pool and heartbeats
// internally.
type Session struct {
	d *DB
	w *txn.Worker
}

// NewSession creates a new execution session, or returns ErrNotStarted
// before Start.
func (d *DB) NewSession() (*Session, error) {
	if !d.started {
		return nil, ErrNotStarted
	}
	w := d.mgr.NewWorker()
	d.logset.AttachWorker(w)
	return &Session{d: d, w: w}, nil
}

// MustSession is NewSession that panics on error — the panicking twin of
// NewSession, following the same convention as MustDefineTable/MustRegister
// (every constructor has an error variant and a Must* twin).
func (d *DB) MustSession() *Session {
	s, err := d.NewSession()
	if err != nil {
		panic(err)
	}
	return s
}

// Session is MustSession under its original name.
//
// Deprecated: use NewSession (error variant) or MustSession (panicking
// twin); Session predates the Must* naming convention.
func (d *DB) Session() *Session { return d.MustSession() }

// Exec runs a stored procedure by name and returns its commit timestamp.
// The result is NOT durable yet when Exec returns — durability arrives with
// the epoch's group-commit release; use Submit to observe it per request.
func (s *Session) Exec(name string, args Args) (TS, error) {
	c := s.d.reg.ByName(name)
	if c == nil {
		return 0, fmt.Errorf("pacman: unknown procedure %q", name)
	}
	return s.w.Execute(c, args, false, time.Now())
}

// ExecAdHoc runs a procedure as an ad-hoc transaction: its effects are
// durable through tuple-level logical logging rather than command logging
// (Section 4.5).
func (s *Session) ExecAdHoc(name string, args Args) (TS, error) {
	c := s.d.reg.ByName(name)
	if c == nil {
		return 0, fmt.Errorf("pacman: unknown procedure %q", name)
	}
	return s.w.Execute(c, args, true, time.Now())
}

// Submit executes a stored procedure on the calling goroutine and returns
// its durable-commit Future: Submit returns as soon as execution commits,
// and the Future resolves when the commit's epoch is group-commit released.
//
// The session's liveness contract still applies while waiting: a goroutine
// that blocks on the Future with its session idle must Heartbeat (or
// Retire) first, or group commit stalls on the session and the Future
// never resolves. Frontend.Submit has no such requirement — the pool
// heartbeats internally.
func (s *Session) Submit(name string, args Args) *Future {
	return s.submit(name, args, false)
}

// SubmitAdHoc is Submit for ad-hoc transactions.
func (s *Session) SubmitAdHoc(name string, args Args) *Future {
	return s.submit(name, args, true)
}

func (s *Session) submit(name string, args Args, adHoc bool) *Future {
	fut := txn.NewFuture(time.Now())
	c := s.d.reg.ByName(name)
	if c == nil {
		fut.Resolve(time.Now(), fmt.Errorf("pacman: unknown procedure %q", name))
		return fut
	}
	s.w.ExecuteFuture(fut, c, args, adHoc)
	return fut
}

// Heartbeat publishes liveness while the session is idle; call it when the
// session has no transaction in flight (e.g., an empty request queue), or
// group commit stalls waiting for this session. Frontend owns this
// internally — only raw Session users need it.
func (s *Session) Heartbeat() { s.w.Heartbeat() }

// Retire marks the session finished.
func (s *Session) Retire() { s.w.Retire() }

// RecoverConfig tunes Restart and DB.Recover.
type RecoverConfig struct {
	// Scheme pins the recovery scheme for Restart. The default, AutoScheme,
	// derives it from the logging kind in the devices' catalog manifest
	// (physical→PLR, logical→LLR, command→CLR-P). DB.Recover ignores this
	// field — its scheme is an explicit parameter.
	Scheme Scheme
	// Serve configures the restarted instance's serving behavior (Restart
	// only): EpochInterval, DisableSync, SingleVersion, CheckpointEvery,
	// CheckpointThreads, MaxRetries, OnRelease. The logging kind, batch
	// geometry, and devices always come from the manifest and the device
	// slice — Logging, BatchEpochs, Devices, and ExistingDevices set here
	// are overridden — and a zero EpochInterval inherits the crashed
	// instance's group-commit cadence from the manifest.
	Serve Options
	// Threads is the recovery parallelism (default 1).
	Threads int
	// Mode selects CLR-P's parallelism (default Pipelined).
	Mode ReplayMode
	// DisableLatches is the Figure 15 unsafe toggle for PLR/LLR.
	DisableLatches bool
	// Breakdown receives the Figure 20 phase split when non-nil (use
	// NewBreakdown).
	Breakdown *Breakdown
	// SkipCheckpoint ignores checkpoints on the devices.
	SkipCheckpoint bool
	// SerialReload uses the legacy one-batch-at-a-time log feeder instead
	// of the pipelined multi-device reloader (baseline measurements only).
	SerialReload bool
	// ReloadWindow bounds how many batches the pipelined reloader stages
	// ahead of replay (default 4).
	ReloadWindow int
}

// Breakdown re-exports the metrics breakdown for recovery instrumentation.
type Breakdown = metrics.Breakdown

// NewBreakdown allocates a Figure 20 recovery-time breakdown.
func NewBreakdown() *Breakdown { return sched.NewBreakdown() }

// Recover rebuilds this (fresh, populated, not-started) instance from the
// logs and checkpoints on the given devices using the chosen scheme. It is
// the offline escape hatch: the recovered instance is not started and the
// catalog is taken on faith — no manifest validation, no epoch resume, no
// serving. Applications should Restart instead, which validates a Blueprint
// against the persisted manifest and returns a started, servable instance;
// Recover remains for the experiment harness (measuring recovery in
// isolation) and for devices that predate the manifest.
func (d *DB) Recover(from []*Device, scheme Scheme, cfg RecoverConfig) (*RecoveryResult, error) {
	if d.started {
		return nil, errors.New("pacman: recover into a fresh instance, not a started one")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	opts := recovery.Options{
		Scheme:         scheme,
		DB:             d.db,
		Registry:       d.reg,
		Devices:        from,
		Threads:        cfg.Threads,
		DisableLatches: cfg.DisableLatches,
		Mode:           cfg.Mode,
		Breakdown:      cfg.Breakdown,
		SkipCheckpoint: cfg.SkipCheckpoint,
		SerialReload:   cfg.SerialReload,
		ReloadWindow:   cfg.ReloadWindow,
	}
	if scheme == recovery.CLRP {
		opts.GDG = d.Analyze()
	}
	return recovery.Run(opts)
}
