package pacman

import (
	"sync"
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// openBank opens a DB instance with the bank schema and procedures over the
// public API.
func openBank(opts Options) (*DB, *workload.Bank) {
	b := workload.NewBank(40)
	d := Open(opts)
	// Rebuild the bank catalog through the public API (same order).
	d.MustDefineTable(tuple.MustSchema("Family",
		tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Current",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Saving",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Stats",
		tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)))
	d.MustRegister(workload.BankTransferProc())
	d.MustRegister(workload.BankDepositProc())
	d.Populate(func(seed func(t *Table, key uint64, vals Tuple)) {
		for i := 1; i <= 40; i++ {
			spouse := int64(0)
			if i%2 == 1 {
				spouse = int64(i + 1)
			} else {
				spouse = int64(i - 1)
			}
			seed(d.Table("Family"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(spouse)})
			seed(d.Table("Current"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(1000)})
			seed(d.Table("Saving"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(100)})
		}
		for n := 1; n <= 10; n++ {
			seed(d.Table("Stats"), uint64(n), Tuple{tuple.I(int64(n)), tuple.I(0)})
		}
	})
	return d, b
}

func TestOpenExecuteClose(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	ts, err := s.Exec("Transfer", Args{proc.A(tuple.I(1)), proc.A(tuple.I(50))})
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Error("zero timestamp")
	}
	if _, err := s.Exec("Nope", nil); err == nil {
		t.Error("unknown procedure accepted")
	}
	r, _ := d.Table("Current").GetRow(1)
	if r.LatestData()[1].Int() != 950 {
		t.Errorf("balance = %d", r.LatestData()[1].Int())
	}
	s.Retire()
	d.Close()
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	for i := 0; i < 200; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(7)), proc.A(tuple.I(int64(1 + i%10))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	// Clean flush so the full history is durable, then crash.
	d.Close()
	want := map[uint64]int64{}
	cur := d.Table("Current")
	cur.ScanSlots(0, cur.NumSlots(), func(r *engine.Row) {
		want[r.Key] = r.LatestData()[1].Int()
	})
	d.Crash()

	for _, scheme := range []Scheme{CLR, CLRP} {
		d2, _ := openBank(Options{ExistingDevices: d.Devices()})
		res, err := d2.Recover(d.Devices(), scheme, RecoverConfig{Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Entries != 200 {
			t.Fatalf("%v: entries = %d", scheme, res.Entries)
		}
		cur2 := d2.Table("Current")
		for k, v := range want {
			r, ok := cur2.GetRow(k)
			if !ok || r.LatestData()[1].Int() != v {
				t.Fatalf("%v: key %d mismatch", scheme, k)
			}
		}
	}
}

func TestCheckpointViaAPI(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	for i := 0; i < 50; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(5)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the epoch clock tick past the first batch so the checkpoint's
	// safe-epoch snapshot covers it.
	time.Sleep(5 * time.Millisecond)
	s.Heartbeat()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(5)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	d.Close()
	d.Crash()
	d2, _ := openBank(Options{ExistingDevices: d.Devices()})
	res, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointRows == 0 {
		t.Error("checkpoint not used")
	}
	if res.Entries >= 100 {
		t.Errorf("checkpoint did not shorten the log: %d entries", res.Entries)
	}
}

func TestOnReleaseLatency(t *testing.T) {
	var mu sync.Mutex
	released := 0
	d, _ := openBank(Options{
		Logging:       CommandLogging,
		EpochInterval: time.Millisecond,
		OnRelease: func(ts []TS, start []time.Time) {
			mu.Lock()
			released += len(ts)
			mu.Unlock()
		},
	})
	d.Start()
	s := d.Session()
	for i := 0; i < 20; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(1)), proc.A(tuple.I(1)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	d.Close()
	mu.Lock()
	defer mu.Unlock()
	if released != 20 {
		t.Errorf("released = %d, want 20", released)
	}
}

func TestAnalyzeExposesGDG(t *testing.T) {
	d, _ := openBank(Options{})
	g := d.Analyze()
	if g.NumBlocks() != 4 {
		t.Errorf("bank GDG blocks = %d, want 4", g.NumBlocks())
	}
	d.Start()
	if d.GDGraph() == nil {
		t.Error("GDG not retained at Start")
	}
	d.Close()
}

func TestSessionBeforeStartPanics(t *testing.T) {
	d, _ := openBank(Options{})
	defer func() {
		if recover() == nil {
			t.Error("Session before Start should panic")
		}
	}()
	d.Session()
}

func TestRecoverIntoStartedInstanceFails(t *testing.T) {
	d, _ := openBank(Options{})
	d.Start()
	defer d.Close()
	if _, err := d.Recover(d.Devices(), CLRP, RecoverConfig{}); err == nil {
		t.Error("recover into a started instance accepted")
	}
}

func TestAdHocViaAPI(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	if _, err := s.ExecAdHoc("Deposit", Args{
		proc.A(tuple.I(2)), proc.A(tuple.I(11)), proc.A(tuple.I(1)),
	}); err != nil {
		t.Fatal(err)
	}
	s.Retire()
	d.Close()
	d.Crash()
	d2, _ := openBank(Options{ExistingDevices: d.Devices()})
	if _, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 2}); err != nil {
		t.Fatal(err)
	}
	r, _ := d2.Table("Current").GetRow(2)
	if r.LatestData()[1].Int() != 1011 {
		t.Errorf("ad-hoc deposit lost: %d", r.LatestData()[1].Int())
	}
}
