package pacman

import (
	"errors"
	"sync"
	"testing"
	"time"

	"pacman/internal/engine"
	"pacman/internal/proc"
	"pacman/internal/tuple"
	"pacman/internal/workload"
)

// openBank opens a DB instance with the bank schema and procedures over the
// public API.
func openBank(opts Options) (*DB, *workload.Bank) {
	b := workload.NewBank(40)
	d := Open(opts)
	// Rebuild the bank catalog through the public API (same order).
	d.MustDefineTable(tuple.MustSchema("Family",
		tuple.Col("id", tuple.KindInt), tuple.Col("Spouse", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Current",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Saving",
		tuple.Col("id", tuple.KindInt), tuple.Col("Value", tuple.KindInt)))
	d.MustDefineTable(tuple.MustSchema("Stats",
		tuple.Col("id", tuple.KindInt), tuple.Col("Count", tuple.KindInt)))
	d.MustRegister(workload.BankTransferProc())
	d.MustRegister(workload.BankDepositProc())
	d.Populate(func(seed func(t *Table, key uint64, vals Tuple)) {
		for i := 1; i <= 40; i++ {
			spouse := int64(0)
			if i%2 == 1 {
				spouse = int64(i + 1)
			} else {
				spouse = int64(i - 1)
			}
			seed(d.Table("Family"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(spouse)})
			seed(d.Table("Current"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(1000)})
			seed(d.Table("Saving"), uint64(i), Tuple{tuple.I(int64(i)), tuple.I(100)})
		}
		for n := 1; n <= 10; n++ {
			seed(d.Table("Stats"), uint64(n), Tuple{tuple.I(int64(n)), tuple.I(0)})
		}
	})
	return d, b
}

func TestOpenExecuteClose(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	ts, err := s.Exec("Transfer", Args{proc.A(tuple.I(1)), proc.A(tuple.I(50))})
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Error("zero timestamp")
	}
	if _, err := s.Exec("Nope", nil); err == nil {
		t.Error("unknown procedure accepted")
	}
	r, _ := d.Table("Current").GetRow(1)
	if r.LatestData()[1].Int() != 950 {
		t.Errorf("balance = %d", r.LatestData()[1].Int())
	}
	s.Retire()
	d.Close()
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	for i := 0; i < 200; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(7)), proc.A(tuple.I(int64(1 + i%10))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	// Clean flush so the full history is durable, then crash.
	d.Close()
	want := map[uint64]int64{}
	cur := d.Table("Current")
	cur.ScanSlots(0, cur.NumSlots(), func(r *engine.Row) {
		want[r.Key] = r.LatestData()[1].Int()
	})
	d.Crash()

	for _, scheme := range []Scheme{CLR, CLRP} {
		d2, _ := openBank(Options{ExistingDevices: d.Devices()})
		res, err := d2.Recover(d.Devices(), scheme, RecoverConfig{Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Entries != 200 {
			t.Fatalf("%v: entries = %d", scheme, res.Entries)
		}
		cur2 := d2.Table("Current")
		for k, v := range want {
			r, ok := cur2.GetRow(k)
			if !ok || r.LatestData()[1].Int() != v {
				t.Fatalf("%v: key %d mismatch", scheme, k)
			}
		}
	}
}

func TestCheckpointViaAPI(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	for i := 0; i < 50; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(5)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let the epoch clock tick past the first batch so the checkpoint's
	// safe-epoch snapshot covers it.
	time.Sleep(5 * time.Millisecond)
	s.Heartbeat()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(int64(1 + i%40))), proc.A(tuple.I(5)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	d.Close()
	d.Crash()
	d2, _ := openBank(Options{ExistingDevices: d.Devices()})
	res, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointRows == 0 {
		t.Error("checkpoint not used")
	}
	if res.Entries >= 100 {
		t.Errorf("checkpoint did not shorten the log: %d entries", res.Entries)
	}
}

func TestOnReleaseLatency(t *testing.T) {
	var mu sync.Mutex
	released := 0
	d, _ := openBank(Options{
		Logging:       CommandLogging,
		EpochInterval: time.Millisecond,
		OnRelease: func(ts []TS, start []time.Time) {
			mu.Lock()
			released += len(ts)
			mu.Unlock()
		},
	})
	d.Start()
	s := d.Session()
	for i := 0; i < 20; i++ {
		if _, err := s.Exec("Deposit", Args{
			proc.A(tuple.I(1)), proc.A(tuple.I(1)), proc.A(tuple.I(1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire()
	d.Close()
	mu.Lock()
	defer mu.Unlock()
	if released != 20 {
		t.Errorf("released = %d, want 20", released)
	}
}

func TestAnalyzeExposesGDG(t *testing.T) {
	d, _ := openBank(Options{})
	g := d.Analyze()
	if g.NumBlocks() != 4 {
		t.Errorf("bank GDG blocks = %d, want 4", g.NumBlocks())
	}
	d.Start()
	if d.GDGraph() == nil {
		t.Error("GDG not retained at Start")
	}
	d.Close()
}

func TestSessionBeforeStartPanics(t *testing.T) {
	d, _ := openBank(Options{})
	defer func() {
		if recover() == nil {
			t.Error("Session before Start should panic")
		}
	}()
	d.Session()
}

func TestNewSessionBeforeStartReturnsError(t *testing.T) {
	d, _ := openBank(Options{})
	if _, err := d.NewSession(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("NewSession err = %v, want ErrNotStarted", err)
	}
	if _, err := d.NewFrontend(FrontendConfig{}); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("NewFrontend err = %v, want ErrNotStarted", err)
	}
	d.Start()
	defer d.Close()
	s, err := d.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.Retire()
}

func TestSessionSubmitFuture(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	if bad := s.Submit("Nope", nil); bad.Err() == nil {
		t.Error("unknown procedure future resolved without error")
	}
	fut := s.Submit("Deposit", Args{proc.A(tuple.I(1)), proc.A(tuple.I(3)), proc.A(tuple.I(1))})
	// Submit returns after execution: the balance is already updated even
	// though durability may still be pending.
	r, _ := d.Table("Current").GetRow(1)
	if r.LatestData()[1].Int() != 1003 {
		t.Fatalf("balance after Submit = %d, want 1003", r.LatestData()[1].Int())
	}
	// A raw session must keep the liveness contract before blocking on its
	// own future: an idle worker that neither heartbeats nor retires holds
	// the safe epoch back and group commit would wait on it forever (the
	// Frontend does this internally).
	s.Retire()
	ts, err := fut.Wait()
	if err != nil || ts == 0 {
		t.Fatalf("Wait = (%v, %v)", ts, err)
	}
	if d.PersistedEpoch() < uint32(ts>>32) {
		t.Fatalf("future durable at epoch %d but pepoch = %d", ts>>32, d.PersistedEpoch())
	}
	d.Close()
}

// TestFrontendMultiplexAPI is the acceptance scenario at the public API: 64
// client goroutines over an 8-session Frontend, every Future resolving with
// a durable timestamp.
func TestFrontendMultiplexAPI(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	fe, err := d.NewFrontend(FrontendConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fe.Sessions() != 8 {
		t.Fatalf("sessions = %d, want 8", fe.Sessions())
	}
	const clients, perClient = 64, 20
	futs := make([][]*Future, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				futs[c] = append(futs[c], fe.Submit("Deposit", Args{
					proc.A(tuple.I(int64(1 + (c+i)%40))), proc.A(tuple.I(1)), proc.A(tuple.I(int64(1 + c%10))),
				}))
			}
		}(c)
	}
	wg.Wait()
	fe.Close()
	d.Close()
	for c := range futs {
		for i, f := range futs[c] {
			ts, err := f.Wait()
			if err != nil {
				t.Fatalf("client %d future %d: %v", c, i, err)
			}
			if ts == 0 || d.PersistedEpoch() < uint32(ts>>32) {
				t.Fatalf("client %d future %d: epoch %d not durable (pepoch %d)",
					c, i, ts>>32, d.PersistedEpoch())
			}
		}
	}
	// The recovered state must include every one of the 64×20 deposits.
	d.Crash()
	d2, _ := openBank(Options{ExistingDevices: d.Devices()})
	res, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries != clients*perClient {
		t.Fatalf("recovered %d entries, want %d", res.Entries, clients*perClient)
	}
}

// TestFrontendCrashResolvesFutures: Crash with submissions in flight —
// every future resolves durable or with ErrCrashed; nothing hangs.
func TestFrontendCrashResolvesFutures(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	fe, err := d.NewFrontend(FrontendConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var futs []*Future
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := fe.Submit("Deposit", Args{
					proc.A(tuple.I(int64(1 + (c+i)%40))), proc.A(tuple.I(1)), proc.A(tuple.I(1)),
				})
				mu.Lock()
				futs = append(futs, f)
				mu.Unlock()
			}
		}(c)
	}
	time.Sleep(3 * time.Millisecond)
	d.Crash()
	close(stop)
	wg.Wait()
	fe.Close()
	mu.Lock()
	all := futs
	mu.Unlock()
	deadline := time.After(5 * time.Second)
	durable, crashed := 0, 0
	for i, f := range all {
		select {
		case <-f.Done():
		case <-deadline:
			t.Fatalf("future %d/%d unresolved after crash", i, len(all))
		}
		switch _, err := f.Wait(); {
		case err == nil:
			durable++
		case errors.Is(err, ErrCrashed):
			crashed++
		case errors.Is(err, ErrFrontendClosed):
		default:
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if durable+crashed == 0 {
		t.Fatal("no futures observed")
	}
}

func TestRecoverIntoStartedInstanceFails(t *testing.T) {
	d, _ := openBank(Options{})
	d.Start()
	defer d.Close()
	if _, err := d.Recover(d.Devices(), CLRP, RecoverConfig{}); err == nil {
		t.Error("recover into a started instance accepted")
	}
}

func TestAdHocViaAPI(t *testing.T) {
	d, _ := openBank(Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	d.Start()
	s := d.Session()
	if _, err := s.ExecAdHoc("Deposit", Args{
		proc.A(tuple.I(2)), proc.A(tuple.I(11)), proc.A(tuple.I(1)),
	}); err != nil {
		t.Fatal(err)
	}
	s.Retire()
	d.Close()
	d.Crash()
	d2, _ := openBank(Options{ExistingDevices: d.Devices()})
	if _, err := d2.Recover(d.Devices(), CLRP, RecoverConfig{Threads: 2}); err != nil {
		t.Fatal(err)
	}
	r, _ := d2.Table("Current").GetRow(2)
	if r.LatestData()[1].Int() != 1011 {
		t.Errorf("ad-hoc deposit lost: %d", r.LatestData()[1].Int())
	}
}
