package pacman

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pacman/internal/workload"
)

// launchSmallbank boots the Smallbank blueprint under command logging with
// a fast epoch clock, for the snapshot-scan acceptance tests.
func launchSmallbank(t *testing.T, customers int) *DB {
	t.Helper()
	spec := workload.Spec(workload.NewSmallbank(workload.SmallbankConfig{
		Customers: customers, HotspotPct: 25,
	}))
	db, err := Launch(Blueprint{
		Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed,
	}, Options{Logging: CommandLogging, EpochInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSnapshotScanNeverAbortsWriters is the headline acceptance test of the
// multi-version subsystem: a scanner loops long snapshot scans while
// writers run a SendPayment-only mix over DISJOINT customer pairs — with no
// writer-writer conflicts, the only possible abort source is the scanner.
// Any Exec error fails the test, and every scanned cut must conserve the
// CHECKING total exactly (SendPayment either moves money or touches
// nothing). Runs under -race via the root package's race gate.
func TestSnapshotScanNeverAbortsWriters(t *testing.T) {
	const customers = 64
	const clients = 4
	db := launchSmallbank(t, customers)
	defer db.Close()
	fe := db.MustFrontend(FrontendConfig{Workers: 4})
	defer fe.Close()

	expected := float64(customers) * 1000 // CHECKING seed per customer

	stop := make(chan struct{})
	var committed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Client c owns customers with id % clients == c: its
			// SendPayments never collide with another client's.
			own := make([]int64, 0, customers/clients)
			for id := int64(1); id <= customers; id++ {
				if int(id)%clients == c {
					own = append(own, id)
				}
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := own[i%len(own)]
				dst := own[(i+1)%len(own)]
				amt := float64(1 + i%40)
				if _, err := fe.Exec("SendPayment", Args{A(I(src)), A(I(dst)), A(F(amt))}); err != nil {
					t.Errorf("writer aborted under concurrent scans: %v", err)
					return
				}
				committed.Add(1)
			}
		}(c)
	}

	// Long scans, back to back, against full write load.
	var lastEpoch uint32
	deadline := time.Now().Add(time.Second)
	for scans := 0; time.Now().Before(deadline) || scans == 0; scans++ {
		var total float64
		epoch, err := fe.Scan("CHECKING", 0, ^uint64(0), func(_ uint64, row Tuple) bool {
			total += row[1].Float()
			return true
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if total != expected {
			t.Fatalf("scan at epoch %d: CHECKING total %v, want exactly %v (inconsistent cut)", epoch, total, expected)
		}
		if epoch < lastEpoch {
			t.Fatalf("scan epochs went backward: %d after %d", epoch, lastEpoch)
		}
		lastEpoch = epoch
	}
	close(stop)
	wg.Wait()
	if committed.Load() == 0 {
		t.Fatal("no writer traffic — the test proved nothing")
	}
}

// TestSnapshotGCBoundsChains: version retention must converge, not
// accumulate — after load stops and the release frontier passes, garbage
// collection prunes every chain back to a single version.
func TestSnapshotGCBoundsChains(t *testing.T) {
	db := launchSmallbank(t, 16)
	defer db.Close()
	fe := db.MustFrontend(FrontendConfig{Workers: 2})
	defer fe.Close()

	// Hammer a few hot customers to build long chains.
	for i := 0; i < 400; i++ {
		c := I(int64(1 + i%4))
		if _, err := fe.Exec("DepositChecking", Args{A(c), A(F(1))}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.MVCCStats()
	if st.Reclaimed == 0 {
		t.Fatalf("GC reclaimed nothing during load: %+v", st)
	}
	// Quiesced: within a few epochs the frontier covers every installed
	// version and chains collapse to their newest version.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = db.MVCCStats()
		if st.MaxChain == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("chains never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotViewPinsAndBounds drives the explicit-epoch view API through
// its contract: a pinned view holds its cut against GC, an epoch below the
// advanced floor is refused with ErrSnapshotReclaimed, and an unreleased
// epoch is refused with ErrSnapshotFuture.
func TestSnapshotViewPinsAndBounds(t *testing.T) {
	db := launchSmallbank(t, 8)
	defer db.Close()
	fe := db.MustFrontend(FrontendConfig{Workers: 2})
	defer fe.Close()

	// Commit a little first so the released frontier is past epoch 0 —
	// SnapshotView(0) means "newest released", so the reclaim probe below
	// needs a nonzero pinned epoch to ask for.
	for i := 0; i < 20; i++ {
		if _, err := fe.Exec("DepositChecking", Args{A(I(int64(1 + i%8))), A(F(1))}); err != nil {
			t.Fatal(err)
		}
	}
	// Pin a view, then keep writing so the frontier moves past it.
	v, err := db.SnapshotView(0)
	if err != nil {
		t.Fatal(err)
	}
	pinned := v.Epoch()
	if pinned == 0 {
		t.Fatal("released frontier still at epoch 0 after durable commits")
	}
	var before float64
	v.Scan(db.Table("CHECKING"), 0, ^uint64(0), func(_ uint64, row Tuple) bool {
		before += row[1].Float()
		return true
	})
	for i := 0; i < 200; i++ {
		if _, err := fe.Exec("DepositChecking", Args{A(I(int64(1 + i%8))), A(F(10))}); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned cut is immutable under the writes that followed it.
	var after float64
	v.Scan(db.Table("CHECKING"), 0, ^uint64(0), func(_ uint64, row Tuple) bool {
		after += row[1].Float()
		return true
	})
	if before != after {
		t.Fatalf("pinned view changed under load: %v then %v", before, after)
	}
	v.Close()

	if _, err := db.SnapshotView(db.Epoch() + 100); !errors.Is(err, ErrSnapshotFuture) {
		t.Fatalf("future epoch error = %v", err)
	}
	// After closing the pin and more commits, the floor passes the old cut.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := fe.Exec("DepositChecking", Args{A(I(1)), A(F(1))}); err != nil {
			t.Fatal(err)
		}
		if db.MVCCStats().Floor > pinned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("GC floor never passed the released pin: %+v", db.MVCCStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := db.SnapshotView(pinned); !errors.Is(err, ErrSnapshotReclaimed) {
		t.Fatalf("reclaimed epoch error = %v", err)
	}
}

// TestFuzzyCheckpointRestart: a checkpoint taken while commits stream
// (fuzzy — nothing pauses) must restart cleanly, recovering exactly the
// acknowledged state, and the restarted instance must serve snapshot scans.
func TestFuzzyCheckpointRestart(t *testing.T) {
	for _, kind := range []LogKind{CommandLogging, PhysicalLogging, LogicalLogging} {
		t.Run(kind.String(), func(t *testing.T) {
			spec := workload.Spec(workload.NewSmallbank(workload.SmallbankConfig{
				Customers: 32, HotspotPct: 25,
			}))
			bp := Blueprint{Tables: spec.Tables, Procedures: spec.Procs, Seed: spec.Seed}
			db, err := Launch(bp, Options{Logging: kind, EpochInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			fe := db.MustFrontend(FrontendConfig{Workers: 2})

			// Stream conserving payments; checkpoint mid-stream.
			stop := make(chan struct{})
			var clientWG sync.WaitGroup
			clientWG.Add(1)
			var writeErr error
			go func() {
				defer clientWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					src, dst := int64(1+i%32), int64(1+(i+7)%32)
					if _, err := fe.Exec("SendPayment", Args{A(I(src)), A(I(dst)), A(F(5))}); err != nil {
						writeErr = err
						return
					}
				}
			}()
			time.Sleep(20 * time.Millisecond)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(20 * time.Millisecond)
			close(stop)
			clientWG.Wait()
			if writeErr != nil {
				t.Fatal(writeErr)
			}
			fe.Close()
			db.Crash()

			db2, res, err := Restart(db.Devices(), bp, RecoverConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			if res.CheckpointID == 0 {
				t.Fatal("recovery ignored the fuzzy checkpoint")
			}
			// The recovered cut conserves the seeded CHECKING total, and
			// the restarted instance serves snapshot scans immediately.
			fe2 := db2.MustFrontend(FrontendConfig{Workers: 1})
			defer fe2.Close()
			var total float64
			if _, err := fe2.Scan("CHECKING", 0, ^uint64(0), func(_ uint64, row Tuple) bool {
				total += row[1].Float()
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if want := float64(32 * 1000); total != want {
				t.Fatalf("recovered CHECKING total %v, want %v", total, want)
			}
		})
	}
}
