package pacman_test

import (
	"errors"
	"flag"
	"fmt"
	"testing"
	"time"

	"pacman"
	"pacman/internal/proc"
	"pacman/internal/torture"
	"pacman/internal/tuple"
)

// -torture.long unlocks the extended sweep (many seeds, more cycles, both
// workloads). CI runs the short fixed-seed matrix; reproduce a reported
// violation with `pacman-bench -exp torture -seed <s>`.
var tortureLong = flag.Bool("torture.long", false, "run the extended torture sweep (slow)")

// TestTortureShort is the CI entry point of the crash-injection torture
// subsystem: a fixed seed set per logging kind, raced, with the first seed
// of each kind forcing a crash *during* Restart so re-entrant recovery is
// always exercised. Any oracle violation fails with the seed and the armed
// fault plans, which deterministically re-derive via pacman-bench.
func TestTortureShort(t *testing.T) {
	kinds := []struct {
		name string
		kind pacman.LogKind
	}{
		{"CL", pacman.CommandLogging},
		{"PL", pacman.PhysicalLogging},
		{"LL", pacman.LogicalLogging},
	}
	seeds := []int64{1, 6, 36} // 6 and 36 are past oracle catches, kept as regressions
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			t.Parallel()
			for i, seed := range seeds {
				st, err := torture.Run(torture.Config{
					Seed:               seed,
					Cycles:             3,
					TxnsPerCycle:       200,
					Logging:            k.kind,
					ForceRecoveryCrash: i == 0,
				})
				if err != nil {
					t.Fatal(err)
				}
				if st.Acked == 0 || st.Stamps == 0 {
					t.Fatalf("seed %d: implausible run, nothing verified: %s", seed, st)
				}
				if i == 0 && st.RecoveryCrashes == 0 {
					t.Fatalf("seed %d: forced crash-during-Restart never happened: %s", seed, st)
				}
				t.Logf("seed %d: %s", seed, st)
			}
		})
	}
}

// TestTortureLong is the escape hatch: a wide seed sweep across kinds and
// workloads, hidden behind -torture.long.
func TestTortureLong(t *testing.T) {
	if !*tortureLong {
		t.Skip("pass -torture.long to run the extended sweep")
	}
	for _, kind := range []pacman.LogKind{pacman.CommandLogging, pacman.PhysicalLogging, pacman.LogicalLogging} {
		for seed := int64(1); seed <= 50; seed++ {
			st, err := torture.Run(torture.Config{
				Seed: seed, Cycles: 5, TxnsPerCycle: 400, Logging: kind,
				ForceRecoveryCrash: seed%2 == 0,
			})
			if err != nil {
				t.Errorf("%v seed %d: %v", kind, seed, err)
			} else if seed == 1 {
				t.Logf("%v seed 1: %s", kind, st)
			}
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		if _, err := torture.Run(torture.Config{
			Seed: seed, Cycles: 4, TxnsPerCycle: 300, Workload: torture.WorkloadTPCC,
		}); err != nil {
			t.Errorf("tpcc seed %d: %v", seed, err)
		}
	}
}

// pairBlueprint is a minimal two-row-per-transaction catalog for the
// Future crash-semantics test: PairPut(a,b,v) writes v to rows a and b of
// KV in one transaction, so atomicity is observable from outside.
func pairBlueprint(rows int) pacman.Blueprint {
	a, b, v := proc.Pm("a"), proc.Pm("b"), proc.Pm("v")
	return pacman.Blueprint{
		Tables: []*pacman.Schema{tuple.MustSchema("KV",
			tuple.Col("id", tuple.KindInt), tuple.Col("v", tuple.KindInt))},
		Procedures: []*pacman.Procedure{{
			Name:   "PairPut",
			Params: []proc.ParamDef{proc.P("a"), proc.P("b"), proc.P("v")},
			Body: []proc.Stmt{
				proc.Read("ra", "KV", a, "v"),
				proc.Write("KV", a, proc.Set("v", v)),
				proc.Read("rb", "KV", b, "v"),
				proc.Write("KV", b, proc.Set("v", v)),
			},
		}},
		Seed: func(seed pacman.Seeder) {
			for k := 1; k <= rows; k++ {
				seed("KV", uint64(k), pacman.Tuple{tuple.I(int64(k)), tuple.I(0)})
			}
		},
	}
}

func pairArgs(i int, val int64) pacman.Args {
	return pacman.Args{
		proc.A(tuple.I(int64(2*i + 1))),
		proc.A(tuple.I(int64(2*i + 2))),
		proc.A(tuple.I(val)),
	}
}

func kvValues(db *pacman.DB) map[uint64]int64 {
	out := map[uint64]int64{}
	db.Table("KV").ScanIndex(0, ^uint64(0), func(r *pacman.Row) bool {
		if d := r.LatestData(); d != nil {
			out[r.Key] = d[1].Int()
		}
		return true
	})
	return out
}

// TestFutureCrashSemantics pins the txn.Future contract at the torture
// boundary: a future resolved durable (nil) before Crash() must read back
// after Restart, and a future that failed with ErrCrashed must be either
// fully present or fully absent — never one row of its two writes.
func TestFutureCrashSemantics(t *testing.T) {
	const pairs = 256
	bp := pairBlueprint(2 * pairs)
	for _, kind := range []pacman.LogKind{pacman.CommandLogging, pacman.PhysicalLogging, pacman.LogicalLogging} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			db, err := pacman.Launch(bp, pacman.Options{Logging: kind, EpochInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			fe := db.MustFrontend(pacman.FrontendConfig{Workers: 4})

			// Phase 1: a synchronously acknowledged transaction.
			if _, err := fe.Exec("PairPut", pairArgs(0, 111)); err != nil {
				t.Fatal(err)
			}
			// Phase 2: a burst the crash races: the early half gets a few
			// group-commit epochs to resolve durable, the tail dies in
			// flight with ErrCrashed.
			futs := make([]*pacman.Future, 0, pairs-1)
			for i := 1; i < pairs; i++ {
				futs = append(futs, fe.Submit("PairPut", pairArgs(i, int64(1000+i))))
				if i == pairs/2 {
					time.Sleep(5 * time.Millisecond)
				}
			}
			db.Crash()
			fe.Close()

			durable := map[int]int64{0: 111}
			maybe := map[int]int64{}
			for i, f := range futs {
				_, err := f.Wait()
				switch {
				case err == nil:
					durable[i+1] = int64(1000 + i + 1)
				case errors.Is(err, pacman.ErrCrashed) || errors.Is(err, pacman.ErrClosed):
					maybe[i+1] = int64(1000 + i + 1)
				case errors.Is(err, pacman.ErrFrontendClosed):
					// rejected before execution: must be fully absent
				default:
					t.Fatalf("pair %d: unexpected error %v", i+1, err)
				}
			}

			db2, _, err := pacman.Restart(db.Devices(), bp, pacman.RecoverConfig{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got := kvValues(db2)
			for i, want := range durable {
				a, b := got[uint64(2*i+1)], got[uint64(2*i+2)]
				if a != want || b != want {
					t.Fatalf("%v: durable pair %d lost: rows (%d, %d), want %d", kind, i, a, b, want)
				}
			}
			survived := 0
			for i, val := range maybe {
				a, b := got[uint64(2*i+1)], got[uint64(2*i+2)]
				if a != b {
					t.Fatalf("%v: ErrCrashed pair %d TORN: rows (%d, %d)", kind, i, a, b)
				}
				if a != 0 && a != val {
					t.Fatalf("%v: ErrCrashed pair %d holds foreign value %d", kind, i, a)
				}
				if a == val {
					survived++
				}
			}
			t.Logf("%v: %d durable, %d maybe (%d survived), all intact", kind, len(durable), len(maybe), survived)
			db2.Close()
		})
	}
}
